//! Object-safe filesystem abstraction with deterministic fault
//! injection.
//!
//! Every persistence surface in the workspace — checkpoint images
//! ([`crate::checkpoint`]), run-cache entries ([`crate::runcache`]),
//! sweep manifests and per-job metrics ([`crate::sweep`]), bench
//! artifacts — does its I/O through the [`Vfs`] trait. Production code
//! uses the passthrough [`StdVfs`]; tests and the crash-point
//! enumeration harness ([`crashtest`], `bench --bin crashmat`) swap in a
//! [`FaultVfs`] that injects seed-driven faults from a
//! [`FaultSchedule`]: torn/short writes, rename failures, ENOSPC,
//! EINTR-style transients, silent byte corruption, and a hard crash
//! point that freezes the disk at the Nth I/O operation.
//!
//! # The crash model
//!
//! A "crash" here is *not* a panic: panicking inside the sweep runner
//! would be caught by its own retry machinery and would tear through
//! `std::thread::scope` with an opaque payload. Instead, the crashing
//! operation applies a **partial effect** (a seeded prefix of the bytes
//! for a write; all-or-nothing for a rename) and then every operation —
//! including the crashing one — returns [`VfsErrorKind::Crashed`]. The
//! disk is frozen exactly as a `kill -9` between syscalls would leave
//! it, while the invocation unwinds through ordinary typed-error paths.
//! A restart with a clean [`StdVfs`] over the same directory then
//! replays the real recovery story.
//!
//! # Atomic writes
//!
//! [`write_atomic`] is the one blessed way to publish a file: bytes land
//! in a uniquely named `.tmp` sibling and are renamed into place.
//! The durability contract (see DESIGN.md) follows from rename
//! atomicity: a reader either sees the complete old file, the complete
//! new file, or no file — never a prefix. `FaultVfs` exists to prove
//! that every surface actually inherits this property.

pub mod crashtest;

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::codec;

/// The filesystem operation a [`VfsError`] arose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Whole-file read.
    Read,
    /// Whole-file write.
    Write,
    /// Atomic rename.
    Rename,
    /// Recursive directory creation.
    CreateDirAll,
    /// Directory listing.
    ReadDir,
    /// File removal.
    Remove,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Rename => "rename",
            IoOp::CreateDirAll => "create_dir_all",
            IoOp::ReadDir => "read_dir",
            IoOp::Remove => "remove",
        };
        f.write_str(s)
    }
}

/// Classified failure cause, so callers can choose a recovery path
/// (retry a transient, treat a missing file as a cold start, stop on a
/// crashed disk) instead of string-matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsErrorKind {
    /// The file or directory does not exist.
    NotFound,
    /// The device is out of space (ENOSPC).
    NoSpace,
    /// A transient, retryable interruption (EINTR-style).
    Interrupted,
    /// The process model died at a crash point: this and every later
    /// operation on the same [`FaultVfs`] fails, freezing the disk.
    Crashed,
    /// Any other OS-level failure, with its message.
    Other(String),
}

impl fmt::Display for VfsErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsErrorKind::NotFound => f.write_str("not found"),
            VfsErrorKind::NoSpace => f.write_str("no space left on device"),
            VfsErrorKind::Interrupted => f.write_str("interrupted (transient)"),
            VfsErrorKind::Crashed => f.write_str("process crashed (injected crash point)"),
            VfsErrorKind::Other(msg) => f.write_str(msg),
        }
    }
}

/// A typed filesystem error: which operation, on which path, failed how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsError {
    /// The operation that failed.
    pub op: IoOp,
    /// The path it was applied to.
    pub path: PathBuf,
    /// The classified cause.
    pub kind: VfsErrorKind,
}

impl VfsError {
    fn new(op: IoOp, path: &Path, kind: VfsErrorKind) -> Self {
        VfsError {
            op,
            path: path.to_path_buf(),
            kind,
        }
    }

    /// Whether retrying the operation could plausibly succeed
    /// (EINTR-style transients only; ENOSPC and crashes reproduce).
    pub fn is_transient(&self) -> bool {
        self.kind == VfsErrorKind::Interrupted
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.kind)
    }
}

impl std::error::Error for VfsError {}

/// Object-safe filesystem surface. Implementations must be shareable
/// across the sweep runner's worker threads.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Reads the entire file at `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError`] with the classified cause.
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError>;

    /// Writes `bytes` to `path`, truncating any existing file. Not
    /// atomic — publishers of consumable files use [`write_atomic`].
    ///
    /// # Errors
    ///
    /// [`VfsError`]; a failed write may leave a prefix on disk.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;

    /// Atomically renames `from` to `to` (same filesystem).
    ///
    /// # Errors
    ///
    /// [`VfsError`]; on failure `from` is untouched.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError>;

    /// Creates `path` and all missing parents.
    ///
    /// # Errors
    ///
    /// [`VfsError`] on filesystem failure.
    fn create_dir_all(&self, path: &Path) -> Result<(), VfsError>;

    /// Lists the entries of directory `path`, sorted by path for
    /// deterministic iteration order.
    ///
    /// # Errors
    ///
    /// [`VfsError`] on filesystem failure.
    fn read_dir(&self, path: &Path) -> Result<Vec<PathBuf>, VfsError>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError`] on filesystem failure.
    fn remove(&self, path: &Path) -> Result<(), VfsError>;
}

/// Monotonic discriminator folded into temp-file names so concurrent
/// [`write_atomic`] calls within one process never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` crash-safely: the bytes land in a uniquely
/// named hidden `.tmp` sibling and are renamed into place, so a crash at
/// any I/O operation leaves either the old file, the new file, or
/// removable `.tmp` litter — never a torn file at `path`.
///
/// # Errors
///
/// [`VfsError`] from the failing write or rename; on a write failure the
/// temp file is removed best-effort.
pub fn write_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_owned());
    let tmp = path.with_file_name(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = vfs.write(&tmp, bytes) {
        let _ = vfs.remove(&tmp);
        return Err(e);
    }
    vfs.rename(&tmp, path)
}

/// Reads the file at `path` as UTF-8 text.
///
/// # Errors
///
/// [`VfsError`]; invalid UTF-8 is reported as [`VfsErrorKind::Other`].
pub fn read_to_string(vfs: &dyn Vfs, path: &Path) -> Result<String, VfsError> {
    let bytes = vfs.read(path)?;
    String::from_utf8(bytes).map_err(|e| {
        VfsError::new(
            IoOp::Read,
            path,
            VfsErrorKind::Other(format!("invalid utf-8: {e}")),
        )
    })
}

// ---- the real filesystem -------------------------------------------------

/// Passthrough [`Vfs`] over `std::fs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdVfs;

/// A shared handle to the passthrough filesystem — the default for
/// every surface that takes an `Arc<dyn Vfs>`.
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

fn classify_io(e: &std::io::Error) -> VfsErrorKind {
    match e.kind() {
        std::io::ErrorKind::NotFound => VfsErrorKind::NotFound,
        std::io::ErrorKind::Interrupted => VfsErrorKind::Interrupted,
        // ENOSPC: matched by raw errno so the build does not depend on
        // `ErrorKind::StorageFull` stabilization.
        _ if e.raw_os_error() == Some(28) => VfsErrorKind::NoSpace,
        _ => VfsErrorKind::Other(e.to_string()),
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        std::fs::read(path).map_err(|e| VfsError::new(IoOp::Read, path, classify_io(&e)))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        std::fs::write(path, bytes).map_err(|e| VfsError::new(IoOp::Write, path, classify_io(&e)))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        std::fs::rename(from, to).map_err(|e| VfsError::new(IoOp::Rename, from, classify_io(&e)))
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), VfsError> {
        std::fs::create_dir_all(path)
            .map_err(|e| VfsError::new(IoOp::CreateDirAll, path, classify_io(&e)))
    }

    fn read_dir(&self, path: &Path) -> Result<Vec<PathBuf>, VfsError> {
        let rd = std::fs::read_dir(path)
            .map_err(|e| VfsError::new(IoOp::ReadDir, path, classify_io(&e)))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| VfsError::new(IoOp::ReadDir, path, classify_io(&e)))?;
            out.push(entry.path());
        }
        out.sort();
        Ok(out)
    }

    fn remove(&self, path: &Path) -> Result<(), VfsError> {
        std::fs::remove_file(path).map_err(|e| VfsError::new(IoOp::Remove, path, classify_io(&e)))
    }
}

// ---- fault injection -----------------------------------------------------

/// A deterministic, seed-driven fault plan for a [`FaultVfs`]. Every
/// field addresses operations by their global 0-based index on that
/// `FaultVfs` instance; the `seed` drives every byte-level decision
/// (torn-prefix lengths, corrupted byte positions), so a schedule is a
/// complete reproducer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed for every byte-level decision the schedule makes.
    pub seed: u64,
    /// Freeze the disk at this operation index: the operation applies a
    /// partial effect and this plus every later operation fails with
    /// [`VfsErrorKind::Crashed`].
    pub crash_at: Option<u64>,
    /// From this operation index on, every space-consuming operation
    /// (write, create_dir_all) fails with [`VfsErrorKind::NoSpace`];
    /// failing writes leave a seeded prefix, as a filling disk does.
    pub enospc_from: Option<u64>,
    /// Operations that fail once with [`VfsErrorKind::Interrupted`] and
    /// no on-disk effect.
    pub interrupt_at: Vec<u64>,
    /// Writes that persist only a seeded strict prefix and report
    /// failure — a short write the caller must treat as fatal.
    pub torn_write_at: Vec<u64>,
    /// Writes that silently succeed with one seeded byte flipped —
    /// bitrot that only content checksums can catch.
    pub corrupt_write_at: Vec<u64>,
    /// Renames that fail with no effect.
    pub fail_rename_at: Vec<u64>,
    /// Negative control: destination-path substring whose renames lose
    /// atomicity — a crash landing on a matching rename leaves a torn
    /// copy at the *destination*, which the post-crash scan must flag.
    pub defeat_rename: Option<String>,
}

impl FaultSchedule {
    /// A schedule that injects nothing (still counts operations).
    pub fn clean(seed: u64) -> Self {
        FaultSchedule {
            seed,
            ..FaultSchedule::default()
        }
    }

    /// A schedule that crashes the process model at operation `op`.
    pub fn crash_at(seed: u64, op: u64) -> Self {
        FaultSchedule {
            seed,
            crash_at: Some(op),
            ..FaultSchedule::default()
        }
    }

    /// A schedule where the disk fills up permanently at operation `op`.
    pub fn enospc_from(seed: u64, op: u64) -> Self {
        FaultSchedule {
            seed,
            enospc_from: Some(op),
            ..FaultSchedule::default()
        }
    }
}

/// One recorded operation, for crash-point reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global 0-based operation index.
    pub index: u64,
    /// Operation kind.
    pub op: IoOp,
    /// Primary path operated on (destination path for renames).
    pub path: PathBuf,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    crashed: bool,
    log: Vec<OpRecord>,
}

/// A [`Vfs`] decorator that counts operations and injects the faults a
/// [`FaultSchedule`] prescribes. Deterministic: the same schedule over
/// the same operation sequence produces the same outcomes and the same
/// bytes on disk.
#[derive(Debug)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    schedule: FaultSchedule,
    state: Mutex<FaultState>,
}

impl FaultVfs {
    /// Wraps `inner` with `schedule`.
    pub fn new(inner: Arc<dyn Vfs>, schedule: FaultSchedule) -> Self {
        FaultVfs {
            inner,
            schedule,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// A fault layer over the real filesystem.
    pub fn over_std(schedule: FaultSchedule) -> Self {
        FaultVfs::new(std_vfs(), schedule)
    }

    /// Operations issued so far (including failed ones).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("poisoned").ops
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("poisoned").crashed
    }

    /// The full operation log (index, kind, path), for reproducer-grade
    /// crash-point reports.
    pub fn log(&self) -> Vec<OpRecord> {
        self.state.lock().expect("poisoned").log.clone()
    }

    /// Seeded 64-bit decision value for operation `idx`.
    fn mix(&self, idx: u64, salt: u64) -> u64 {
        let mut b = [0u8; 24];
        b[..8].copy_from_slice(&self.schedule.seed.to_le_bytes());
        b[8..16].copy_from_slice(&idx.to_le_bytes());
        b[16..].copy_from_slice(&salt.to_le_bytes());
        codec::fnv64(&b)
    }

    /// Seeded strict-prefix length for a torn write of `len` bytes.
    fn torn_len(&self, idx: u64, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (self.mix(idx, 1) % len as u64) as usize
        }
    }

    /// Counts the operation, records it, and applies the state-level
    /// gates (already-crashed, crash-point trip, transient). Returns the
    /// operation's index, or the error that preempts it. `Ok` means the
    /// per-op fault logic (ENOSPC, torn, corrupt) still gets its say.
    fn begin(&self, op: IoOp, path: &Path) -> Result<u64, VfsError> {
        let mut st = self.state.lock().expect("poisoned");
        let idx = st.ops;
        st.ops += 1;
        st.log.push(OpRecord {
            index: idx,
            op,
            path: path.to_path_buf(),
        });
        if st.crashed {
            return Err(VfsError::new(op, path, VfsErrorKind::Crashed));
        }
        if self.schedule.crash_at == Some(idx) {
            st.crashed = true;
            // The caller applies the partial effect for mutating ops.
            drop(st);
            return Ok(idx);
        }
        drop(st);
        if self.schedule.interrupt_at.contains(&idx) {
            return Err(VfsError::new(op, path, VfsErrorKind::Interrupted));
        }
        Ok(idx)
    }

    fn crash_tripped(&self, idx: u64) -> bool {
        self.schedule.crash_at == Some(idx)
    }

    fn enospc(&self, idx: u64) -> bool {
        self.schedule.enospc_from.is_some_and(|k| idx >= k)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        let idx = self.begin(IoOp::Read, path)?;
        if self.crash_tripped(idx) {
            return Err(VfsError::new(IoOp::Read, path, VfsErrorKind::Crashed));
        }
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let idx = self.begin(IoOp::Write, path)?;
        if self.crash_tripped(idx) {
            // The kill lands mid-write: a seeded prefix reaches disk.
            let _ = self
                .inner
                .write(path, &bytes[..self.torn_len(idx, bytes.len())]);
            return Err(VfsError::new(IoOp::Write, path, VfsErrorKind::Crashed));
        }
        if self.enospc(idx) {
            // A filling disk also tears the write before failing it.
            let _ = self
                .inner
                .write(path, &bytes[..self.torn_len(idx, bytes.len())]);
            return Err(VfsError::new(IoOp::Write, path, VfsErrorKind::NoSpace));
        }
        if self.schedule.torn_write_at.contains(&idx) {
            let _ = self
                .inner
                .write(path, &bytes[..self.torn_len(idx, bytes.len())]);
            return Err(VfsError::new(
                IoOp::Write,
                path,
                VfsErrorKind::Other("injected short write".to_owned()),
            ));
        }
        if self.schedule.corrupt_write_at.contains(&idx) && !bytes.is_empty() {
            // Silent bitrot: full write, one seeded byte flipped, Ok.
            let mut corrupted = bytes.to_vec();
            let pos = (self.mix(idx, 2) % bytes.len() as u64) as usize;
            let flip = (self.mix(idx, 3) % 255) as u8 + 1; // never a no-op xor
            corrupted[pos] ^= flip;
            return self.inner.write(path, &corrupted);
        }
        self.inner.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        let idx = self.begin(IoOp::Rename, to)?;
        if self.crash_tripped(idx) {
            let defeated = self
                .schedule
                .defeat_rename
                .as_ref()
                .is_some_and(|pat| to.to_string_lossy().contains(pat.as_str()));
            if defeated {
                // Non-atomic rename under crash: a torn copy of the
                // source lands at the destination.
                if let Ok(bytes) = self.inner.read(from) {
                    let _ = self
                        .inner
                        .write(to, &bytes[..self.torn_len(idx, bytes.len())]);
                }
            } else if self.mix(idx, 4) & 1 == 0 {
                // Atomic rename: the kill leaves it either fully applied
                // (seeded coin) or not at all — never a torn file.
                let _ = self.inner.rename(from, to);
            }
            return Err(VfsError::new(IoOp::Rename, to, VfsErrorKind::Crashed));
        }
        if self.schedule.fail_rename_at.contains(&idx) {
            return Err(VfsError::new(
                IoOp::Rename,
                to,
                VfsErrorKind::Other("injected rename failure".to_owned()),
            ));
        }
        // Renames consume no data blocks; they pass through under ENOSPC.
        self.inner.rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), VfsError> {
        let idx = self.begin(IoOp::CreateDirAll, path)?;
        if self.crash_tripped(idx) {
            return Err(VfsError::new(
                IoOp::CreateDirAll,
                path,
                VfsErrorKind::Crashed,
            ));
        }
        if self.enospc(idx) {
            return Err(VfsError::new(
                IoOp::CreateDirAll,
                path,
                VfsErrorKind::NoSpace,
            ));
        }
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> Result<Vec<PathBuf>, VfsError> {
        let idx = self.begin(IoOp::ReadDir, path)?;
        if self.crash_tripped(idx) {
            return Err(VfsError::new(IoOp::ReadDir, path, VfsErrorKind::Crashed));
        }
        self.inner.read_dir(path)
    }

    fn remove(&self, path: &Path) -> Result<(), VfsError> {
        let idx = self.begin(IoOp::Remove, path)?;
        if self.crash_tripped(idx) {
            // Removal is atomic in the model: seeded coin on whether the
            // unlink made it to disk before the kill.
            if self.mix(idx, 5) & 1 == 0 {
                let _ = self.inner.remove(path);
            }
            return Err(VfsError::new(IoOp::Remove, path, VfsErrorKind::Crashed));
        }
        // Removal frees space: allowed under ENOSPC.
        self.inner.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("refsim-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn std_vfs_roundtrip_and_classification() {
        let d = tmp_dir("std");
        let v = StdVfs;
        let p = d.join("a.bin");
        v.write(&p, b"hello").expect("write");
        assert_eq!(v.read(&p).expect("read"), b"hello");
        let q = d.join("b.bin");
        v.rename(&p, &q).expect("rename");
        assert_eq!(
            v.read(&p).expect_err("moved away").kind,
            VfsErrorKind::NotFound
        );
        let listed = v.read_dir(&d).expect("read_dir");
        assert_eq!(listed, vec![q.clone()]);
        v.remove(&q).expect("remove");
        assert_eq!(v.read_dir(&d).expect("read_dir"), Vec::<PathBuf>::new());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn write_atomic_publishes_without_litter() {
        let d = tmp_dir("atomic");
        let v = StdVfs;
        let p = d.join("out.bin");
        write_atomic(&v, &p, b"payload").expect("write_atomic");
        assert_eq!(v.read(&p).expect("read"), b"payload");
        assert_eq!(
            v.read_dir(&d).expect("read_dir").len(),
            1,
            "no temp litter after a clean publish"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_freezes_the_disk_and_tears_the_inflight_write() {
        let d = tmp_dir("crash");
        let v = FaultVfs::over_std(FaultSchedule::crash_at(7, 1));
        v.write(&d.join("first.bin"), b"first").expect("op 0 clean");
        let e = v
            .write(&d.join("second.bin"), b"0123456789")
            .expect_err("op 1 crashes");
        assert_eq!(e.kind, VfsErrorKind::Crashed);
        assert!(v.crashed());
        // The torn prefix is a strict prefix.
        let torn = std::fs::read(d.join("second.bin")).expect("prefix exists");
        assert!(torn.len() < 10, "torn write must be a strict prefix");
        assert_eq!(torn, b"0123456789"[..torn.len()].to_vec());
        // Every later op fails too, with no effect.
        let e = v.read(&d.join("first.bin")).expect_err("disk is dead");
        assert_eq!(e.kind, VfsErrorKind::Crashed);
        let e = v
            .write(&d.join("third.bin"), b"x")
            .expect_err("disk is dead");
        assert_eq!(e.kind, VfsErrorKind::Crashed);
        assert!(!d.join("third.bin").exists());
        assert_eq!(v.ops(), 4, "failed ops still count");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_on_write_atomic_never_tears_the_final_path() {
        // Whatever op index the crash lands on, the final path holds
        // either nothing or the complete payload.
        let payload = vec![0xAB; 64];
        for k in 0..4 {
            let d = tmp_dir(&format!("pub{k}"));
            let v = FaultVfs::over_std(FaultSchedule::crash_at(k + 100, k));
            let p = d.join("final.bin");
            let r = write_atomic(&v, &p, &payload);
            match std::fs::read(&p) {
                Ok(bytes) => assert_eq!(bytes, payload, "crash at {k} tore the final path"),
                Err(_) => assert!(r.is_err(), "no file implies a reported failure"),
            }
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn defeat_rename_tears_the_destination() {
        let d = tmp_dir("defeat");
        let mut sched = FaultSchedule::crash_at(3, 1);
        sched.defeat_rename = Some("final".to_owned());
        let v = FaultVfs::over_std(sched);
        let tmp = d.join("x.tmp");
        let dst = d.join("final.bin");
        v.write(&tmp, b"0123456789").expect("op 0");
        let e = v.rename(&tmp, &dst).expect_err("op 1 crashes");
        assert_eq!(e.kind, VfsErrorKind::Crashed);
        let torn = std::fs::read(&dst).expect("defeated rename leaves a destination file");
        assert!(
            torn.len() < 10,
            "defeated rename must leave a strict prefix, got {} bytes",
            torn.len()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn enospc_interrupt_torn_and_corrupt_faults() {
        let d = tmp_dir("faults");
        let sched = FaultSchedule {
            seed: 11,
            interrupt_at: vec![0],
            torn_write_at: vec![1],
            corrupt_write_at: vec![2],
            enospc_from: Some(4),
            ..FaultSchedule::default()
        };
        let v = FaultVfs::over_std(sched);
        let p = d.join("f.bin");
        assert!(v.write(&p, b"abc").expect_err("op 0").is_transient());
        assert!(!p.exists(), "a transient leaves no effect");
        let e = v.write(&p, b"abcdef").expect_err("op 1 torn");
        assert!(matches!(e.kind, VfsErrorKind::Other(_)));
        v.write(&p, b"abcdef")
            .expect("op 2 corrupt write reports success");
        let on_disk = std::fs::read(&p).expect("read");
        assert_eq!(on_disk.len(), 6);
        assert_ne!(on_disk, b"abcdef", "exactly one byte must differ");
        assert_eq!(
            on_disk
                .iter()
                .zip(b"abcdef")
                .filter(|(a, b)| a != b)
                .count(),
            1
        );
        v.write(&p, b"ok").expect("op 3 clean");
        let e = v.write(&p, b"xx").expect_err("op 4 enospc");
        assert_eq!(e.kind, VfsErrorKind::NoSpace);
        let e = v.create_dir_all(&d.join("sub")).expect_err("op 5 enospc");
        assert_eq!(e.kind, VfsErrorKind::NoSpace);
        v.remove(&p).expect("op 6: removal frees space, allowed");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let d = tmp_dir("det");
            let v = FaultVfs::over_std(FaultSchedule::crash_at(42, 3));
            let mut outcomes = Vec::new();
            for i in 0..6 {
                let r = v.write(&d.join(format!("{i}.bin")), &[i as u8; 32]);
                let on_disk = std::fs::read(d.join(format!("{i}.bin"))).unwrap_or_default();
                outcomes.push((r.map_err(|e| e.kind), on_disk));
            }
            let log = v.log();
            let _ = std::fs::remove_dir_all(&d);
            (outcomes, log)
        };
        assert_eq!(run(), run());
    }
}

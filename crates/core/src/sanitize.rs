//! `simsan` — a runtime invariant sanitizer for the whole simulator.
//!
//! The paper's argument rests on invariants the simulator never used to
//! check at runtime: Algorithm 1's sequential schedule must leave every
//! bank refresh-free for `(B-1)/B` of `tREFW`, Algorithm 2's partitioned
//! allocator must never place a page outside a task's
//! `possible_banks_vector`, and Algorithm 3's `η` bound must prevent
//! starvation. This module turns those statements (plus DDR protocol
//! rules and cross-layer accounting identities) into machine-checked
//! [`Checker`]s that observe a running [`crate::system::System`] through
//! two hooks:
//!
//! * **per-event** — every DRAM command the controller issues and every
//!   page the allocator hands out ([`Event`]);
//! * **per-quantum** — a plain-data [`QuantumSample`] snapshotted at
//!   each scheduler preemption (and once more at the end of the run).
//!
//! Checkers never touch live simulator state; they receive owned
//! samples, which keeps them trivially testable (tests forge samples to
//! provoke each violation deliberately) and keeps `AuditLevel::Off`
//! runs bit-identical to un-audited ones.
//!
//! Violations are collected into a [`ViolationReport`]; error-severity
//! findings surface as [`crate::error::RefsimError::InvariantViolation`]
//! from [`crate::system::System::try_run`] instead of panics.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use refsim_dram::controller::TraceCmd;
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::FgrMode;

/// How much runtime auditing a [`crate::system::System`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AuditLevel {
    /// No sanitizer is constructed; zero overhead, bit-identical runs.
    #[default]
    Off,
    /// Event checks always run; quantum checks run on every 16th
    /// scheduler quantum.
    Sampled,
    /// Every event and every quantum is checked.
    Full,
}

/// The architectural layer an invariant belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// DRAM device / controller protocol conformance.
    Dram,
    /// OS allocator, partition, and scheduler invariants.
    Os,
    /// Cross-layer accounting identities.
    Cross,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Dram => write!(f, "dram"),
            Layer::Os => write!(f, "os"),
            Layer::Cross => write!(f, "xlayer"),
        }
    }
}

/// How bad a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious but not proof of corruption; reported, never fatal.
    Warning,
    /// A broken invariant; fails the run as
    /// [`crate::error::RefsimError::InvariantViolation`].
    Error,
}

/// One broken invariant, with enough context to triage it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the checker that fired (e.g. `dram.trfc_overlap`).
    pub checker: &'static str,
    /// Layer the invariant belongs to.
    pub layer: Layer,
    /// Whether the finding fails the run.
    pub severity: Severity,
    /// Simulation time of the offending observation.
    pub at: Ps,
    /// Scheduler quantum during which the checker fired.
    pub quantum: u64,
    /// Human-readable evidence (component, counters, addresses).
    pub evidence: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warn",
            Severity::Error => "ERROR",
        };
        write!(
            f,
            "[{sev}] {} ({}) at {} q{}: {}",
            self.checker, self.layer, self.at, self.quantum, self.evidence
        )
    }
}

/// Collects violations during a run; handed to every checker hook.
#[derive(Debug, Default)]
pub struct Sink {
    detail: Vec<Violation>,
    total: u64,
    errors: u64,
    /// Current scheduler quantum, stamped into emitted violations.
    pub quantum: u64,
    /// Current simulation time, stamped when a checker has no better
    /// event time of its own.
    pub now: Ps,
}

/// Cap on retained violation detail; the counters keep exact totals.
const DETAIL_CAP: usize = 128;

impl Sink {
    /// Records a violation from `checker` with the given evidence.
    pub fn emit(
        &mut self,
        checker: &'static str,
        layer: Layer,
        severity: Severity,
        at: Ps,
        evidence: String,
    ) {
        self.total += 1;
        if severity == Severity::Error {
            self.errors += 1;
        }
        if self.detail.len() < DETAIL_CAP {
            self.detail.push(Violation {
                checker,
                layer,
                severity,
                at,
                quantum: self.quantum,
                evidence,
            });
        }
    }

    fn into_report(self) -> ViolationReport {
        ViolationReport {
            violations: self.detail,
            total: self.total,
            errors: self.errors,
        }
    }
}

/// Everything the sanitizer found over one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ViolationReport {
    /// Retained violation detail (first [`DETAIL_CAP`] findings).
    pub violations: Vec<Violation>,
    /// Exact count of all findings, including dropped detail.
    pub total: u64,
    /// Exact count of error-severity findings.
    pub errors: u64,
}

impl ViolationReport {
    /// True when no error-severity violation was found.
    pub fn is_clean(&self) -> bool {
        self.errors == 0
    }

    /// Findings grouped by checker name, in first-seen order.
    pub fn by_checker(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for v in &self.violations {
            match out.iter_mut().find(|(n, _)| *n == v.checker) {
                Some((_, c)) => *c += 1,
                None => out.push((v.checker, 1)),
            }
        }
        out
    }
}

impl fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violation(s), {} error(s)", self.total, self.errors)?;
        for v in self.violations.iter().take(4) {
            write!(f, "; {v}")?;
        }
        if self.violations.len() > 4 {
            write!(f, "; …")?;
        }
        Ok(())
    }
}

/// A single observation delivered to [`Checker::on_event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A DRAM command left a memory controller's command bus.
    DramCmd {
        /// Memory channel the command was issued on.
        channel: u32,
        /// Issue instant.
        at: Ps,
        /// The command itself.
        cmd: TraceCmd,
        /// Target rank.
        rank: u8,
        /// Target bank within the rank (`u8::MAX` for rank-wide).
        bank: u8,
    },
    /// The bank-aware allocator mapped a physical page for a task.
    PageAlloc {
        /// Owning task id.
        task: u32,
        /// Bank the frame landed in.
        bank: u32,
        /// Bit-mask of the task's permitted banks.
        permitted: u64,
        /// Whether the allocator recorded this as a soft-partition
        /// fallback (spill outside the preferred banks).
        fell_back: bool,
        /// Whether the system runs a hard partition (spills forbidden).
        hard: bool,
        /// Allocation instant.
        at: Ps,
    },
}

/// Per-execution-context counters sampled each quantum (one entry per
/// task's [`refsim_cpu::core::ExecContext`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreSample {
    /// Core-local time.
    pub now: Ps,
    /// Instructions retired so far (cumulative).
    pub instructions: u64,
    /// Total memory-stall time so far (cumulative).
    pub stall_time: Ps,
    /// LLC misses issued so far (cumulative).
    pub misses: u64,
    /// Fills currently outstanding at the memory system.
    pub outstanding: u64,
}

/// Per-task scheduler/allocator counters sampled each quantum.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSample {
    /// Task id.
    pub id: u32,
    /// Whether the task is currently runnable or running.
    pub runnable: bool,
    /// Times the task has been scheduled onto a CPU (cumulative).
    pub schedules: u64,
    /// Pages the soft partition spilled outside the preferred banks.
    pub spilled_pages: u64,
    /// Bytes resident on banks outside `possible_banks`.
    pub outside_bytes: u64,
}

/// Per-channel memory-controller counters sampled each quantum.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChannelSample {
    /// Reads accepted into the read queue (since last stats reset).
    pub reads_enqueued: u64,
    /// Writes accepted into the write queue (since last stats reset).
    pub writes_enqueued: u64,
    /// Reads completed, including store-forwarded ones.
    pub reads_completed: u64,
    /// Writes completed.
    pub writes_completed: u64,
    /// Reads served by store-forwarding (never enqueued).
    pub forwarded_reads: u64,
    /// Current read-queue depth.
    pub read_q: u64,
    /// Current write-queue depth.
    pub write_q: u64,
    /// All-bank refreshes issued (since last stats reset).
    pub refreshes_ab: u64,
    /// Per-bank refreshes issued (since last stats reset).
    pub refreshes_pb: u64,
    /// Worst single-refresh postponement observed.
    pub postpone_max: Ps,
    /// Whether the retention oracle is attached to this channel.
    pub oracle_enabled: bool,
    /// Retention violations the oracle has charged so far.
    pub oracle_violations: u64,
    /// Rows refreshed per flat bank of this channel (monotone; not
    /// reset by `begin_measure`).
    pub rows_refreshed: Vec<u64>,
}

/// Scheduler-wide counters sampled each quantum (never reset).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedSample {
    /// `pick_next` invocations.
    pub picks: u64,
    /// Quanta deliberately placed to dodge a forecast refresh.
    pub refresh_dodges: u64,
    /// Refresh-aware picks that fell back to plain fairness.
    pub eta_fallbacks: u64,
    /// Task migrations between CPUs.
    pub migrations: u64,
}

/// A plain-data snapshot of cross-layer state, taken once per scheduler
/// quantum and delivered to [`Checker::on_quantum`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantumSample {
    /// Simulation time of the snapshot.
    pub now: Ps,
    /// Quantum ordinal (count of preemptions so far).
    pub quantum: u64,
    /// Scheduler counters.
    pub sched: SchedSample,
    /// Per-task counters.
    pub tasks: Vec<TaskSample>,
    /// Per-execution-context counters (one per task).
    pub cores: Vec<CoreSample>,
    /// Per-channel controller counters.
    pub chans: Vec<ChannelSample>,
    /// Read fills in flight between cores and memory controllers.
    pub inflight_fills: u64,
    /// Allocator self-audit: `Some(problem)` when the buddy free lists
    /// are inconsistent (double-free, lost frame, bad split).
    pub alloc_audit: Option<String>,
}

/// One pluggable invariant checker.
///
/// Implementations keep their own incremental state and report through
/// the [`Sink`]; both hooks default to no-ops so a checker implements
/// only the granularity it needs.
pub trait Checker {
    /// Stable dotted name, e.g. `os.partition_isolation`.
    fn name(&self) -> &'static str;
    /// Layer this checker audits.
    fn layer(&self) -> Layer;
    /// Called for every [`Event`] (all audit levels above `Off`).
    fn on_event(&mut self, _ev: &Event, _sink: &mut Sink) {}
    /// Called once per sampled scheduler quantum.
    fn on_quantum(&mut self, _s: &QuantumSample, _sink: &mut Sink) {}
    /// Called when the system resets its measurement counters
    /// (`begin_measure`): checkers holding counter baselines must
    /// re-base at the next sample instead of inferring the reset from
    /// counter regressions, which sampled audits can miss.
    fn on_stats_reset(&mut self) {}
    /// Called once at end of run with the final sample; deadline-style
    /// checkers flush here.
    fn finish(&mut self, _s: &QuantumSample, _sink: &mut Sink) {}
}

/// Static description of the system under audit, used to instantiate
/// the standard checker catalog with the right thresholds.
#[derive(Debug, Clone)]
pub struct AuditScope {
    /// Refresh policy in force.
    pub policy: RefreshPolicyKind,
    /// Scaled retention window `tREFW`.
    pub trefw: Ps,
    /// All-bank refresh interval `tREFI` (unscaled JEDEC value).
    pub trefi_ab: Ps,
    /// All-bank refresh cycle time `tRFC(ab)`.
    pub trfc_ab: Ps,
    /// Per-bank refresh cycle time `tRFC(pb)`.
    pub trfc_pb: Ps,
    /// Algorithm 1 slice length (`tREFW / banks` when serialisable).
    pub slice: Ps,
    /// Flat banks per channel.
    pub banks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Memory channels.
    pub channels: u32,
    /// Rows a bank must refresh for one complete retention sweep.
    pub rows_per_bank: u64,
    /// Whether the partition plan is hard (spills forbidden).
    pub hard_partition: bool,
    /// `η` bound of the refresh-aware scheduler, when active.
    pub eta: Option<u32>,
    /// CPU cores.
    pub n_cores: u32,
    /// Tasks in the workload.
    pub n_tasks: u32,
}

impl AuditScope {
    /// Retention slack granted on top of `tREFW` before the
    /// completeness checker fires: the JEDEC bounded-postponement
    /// allowance of 9 × `tREFI` (merged with the oracle's slack).
    pub fn completeness_slack(&self) -> Ps {
        self.trefi_ab * 9
    }

    /// The full per-bank completeness window: `tREFW` + slack.
    pub fn completeness_window(&self) -> Ps {
        self.trefw + self.completeness_slack()
    }
}

/// Instantiates the standard checker catalog for a system described by
/// `scope`. Policy-specific checkers (sequential contiguity, `η`
/// starvation, refresh completeness) are included only when they apply.
pub fn standard_checkers(scope: &AuditScope) -> Vec<Box<dyn Checker>> {
    let mut v: Vec<Box<dyn Checker>> = Vec::new();
    if scope.policy != RefreshPolicyKind::NoRefresh {
        v.push(Box::new(RefreshCompleteness::new(scope)));
        v.push(Box::new(RefreshDebt::new(scope)));
        v.push(Box::new(TrfcOverlap::new(scope)));
    }
    if scope.policy == RefreshPolicyKind::PerBankSequential {
        v.push(Box::new(SeqContiguity::new(scope)));
    }
    v.push(Box::new(BuddyConsistency::default()));
    v.push(Box::new(PartitionIsolation::new(scope)));
    if scope.eta.is_some() {
        v.push(Box::new(EtaStarvation::new(scope)));
    }
    v.push(Box::new(FallbackSanity::default()));
    v.push(Box::new(RetentionSync::new(scope)));
    v.push(Box::new(Conservation::default()));
    v
}

/// The sanitizer: owns the checker set and the violation sink, and is
/// driven by [`crate::system::System`].
pub struct Sanitizer {
    level: AuditLevel,
    checkers: Vec<Box<dyn Checker>>,
    sink: Sink,
    quanta: u64,
}

impl fmt::Debug for Sanitizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sanitizer")
            .field("level", &self.level)
            .field("checkers", &self.checkers.len())
            .field("quanta", &self.quanta)
            .finish()
    }
}

impl Sanitizer {
    /// Builds a sanitizer running `checkers` at the given level.
    pub fn new(level: AuditLevel, checkers: Vec<Box<dyn Checker>>) -> Self {
        Sanitizer {
            level,
            checkers,
            sink: Sink::default(),
            quanta: 0,
        }
    }

    /// Builds a sanitizer with the [`standard_checkers`] catalog.
    pub fn standard(level: AuditLevel, scope: &AuditScope) -> Self {
        Sanitizer::new(level, standard_checkers(scope))
    }

    /// Feeds one event through every checker.
    pub fn on_event(&mut self, ev: &Event) {
        for c in &mut self.checkers {
            c.on_event(ev, &mut self.sink);
        }
    }

    /// Notifies every checker that measurement counters were reset.
    pub fn on_stats_reset(&mut self) {
        for c in &mut self.checkers {
            c.on_stats_reset();
        }
    }

    /// Advances the quantum counter and reports whether this quantum
    /// should be sampled at the configured level — callers skip building
    /// the (comparatively expensive) [`QuantumSample`] when it returns
    /// `false`.
    pub fn begin_quantum(&mut self) -> bool {
        self.quanta += 1;
        match self.level {
            AuditLevel::Off => false,
            AuditLevel::Sampled => self.quanta % 16 == 1,
            AuditLevel::Full => true,
        }
    }

    /// Feeds one quantum sample through every checker.
    pub fn on_quantum(&mut self, s: &QuantumSample) {
        self.sink.quantum = s.quantum;
        self.sink.now = s.now;
        for c in &mut self.checkers {
            c.on_quantum(s, &mut self.sink);
        }
    }

    /// Flushes deadline-style checkers with the final sample and
    /// returns the completed report.
    pub fn finish(mut self, s: &QuantumSample) -> ViolationReport {
        self.sink.quantum = s.quantum;
        self.sink.now = s.now;
        for c in &mut self.checkers {
            c.on_quantum(s, &mut self.sink);
        }
        for c in &mut self.checkers {
            c.finish(s, &mut self.sink);
        }
        self.sink.into_report()
    }

    /// The report as accumulated so far (without finishing).
    pub fn report_so_far(&self) -> ViolationReport {
        ViolationReport {
            violations: self.sink.detail.clone(),
            total: self.sink.total,
            errors: self.sink.errors,
        }
    }
}

// ---------------------------------------------------------------------
// DRAM-layer checkers
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct BankProgress {
    base_at: Ps,
    base_rows: u64,
    seen: bool,
}

/// Every bank must complete a full retention sweep (refresh all of its
/// rows) within `tREFW` plus the JEDEC 9 × `tREFI` postponement
/// allowance. Tracks the monotone `rows_refreshed` counter per bank and
/// fires (then re-bases, so each stall reports once) when a sweep
/// deadline passes without enough progress.
#[derive(Debug)]
pub struct RefreshCompleteness {
    window: Ps,
    rows_per_bank: u64,
    banks: Vec<BankProgress>,
    banks_per_channel: u32,
}

impl RefreshCompleteness {
    /// Builds the checker for `scope`.
    pub fn new(scope: &AuditScope) -> Self {
        RefreshCompleteness {
            window: scope.completeness_window(),
            rows_per_bank: scope.rows_per_bank.max(1),
            banks: vec![
                BankProgress::default();
                (scope.channels * scope.banks_per_channel) as usize
            ],
            banks_per_channel: scope.banks_per_channel,
        }
    }
}

impl Checker for RefreshCompleteness {
    fn name(&self) -> &'static str {
        "dram.refresh_completeness"
    }
    fn layer(&self) -> Layer {
        Layer::Dram
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        for (ch, chan) in s.chans.iter().enumerate() {
            for (b, &rows) in chan.rows_refreshed.iter().enumerate() {
                let flat = ch * self.banks_per_channel as usize + b;
                let Some(st) = self.banks.get_mut(flat) else {
                    continue;
                };
                if !st.seen {
                    *st = BankProgress {
                        base_at: s.now,
                        base_rows: rows,
                        seen: true,
                    };
                    continue;
                }
                let sweeps = rows.saturating_sub(st.base_rows) / self.rows_per_bank;
                let deadline = st.base_at + self.window * (sweeps + 1);
                if s.now > deadline {
                    sink.emit(
                        name,
                        layer,
                        Severity::Error,
                        s.now,
                        format!(
                            "channel {ch} bank {b}: only {} rows refreshed in {} \
                             (need {} per {})",
                            rows - st.base_rows,
                            s.now - st.base_at,
                            self.rows_per_bank * (sweeps + 1),
                            self.window * (sweeps + 1),
                        ),
                    );
                    st.base_at = s.now;
                    st.base_rows = rows;
                }
            }
        }
    }
}

/// The refresh-postponement debt ledger: no single refresh may be
/// postponed past the JEDEC bound of 9 × `tREFI` (plus a small command
/// scheduling margin). Latches per channel so each episode reports once.
#[derive(Debug)]
pub struct RefreshDebt {
    limit: Ps,
    fired: Vec<bool>,
}

impl RefreshDebt {
    /// Builds the checker for `scope`.
    pub fn new(scope: &AuditScope) -> Self {
        RefreshDebt {
            limit: scope.trefi_ab * 9 + scope.trfc_ab * 8,
            fired: vec![false; scope.channels as usize],
        }
    }
}

impl Checker for RefreshDebt {
    fn name(&self) -> &'static str {
        "dram.refresh_debt"
    }
    fn layer(&self) -> Layer {
        Layer::Dram
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        for (ch, chan) in s.chans.iter().enumerate() {
            let Some(fired) = self.fired.get_mut(ch) else {
                continue;
            };
            if chan.postpone_max > self.limit && !*fired {
                *fired = true;
                sink.emit(
                    name,
                    layer,
                    Severity::Error,
                    s.now,
                    format!(
                        "channel {ch}: refresh postponed {} exceeds debt bound {}",
                        chan.postpone_max, self.limit
                    ),
                );
            }
        }
    }
}

/// No command may be issued to a rank (resp. bank) while an all-bank
/// (resp. per-bank) refresh holds it in its `tRFC` window, and refresh
/// windows must not overlap each other on the same resource.
#[derive(Debug)]
pub struct TrfcOverlap {
    trfc_ab: Ps,
    trfc_pb: Ps,
    banks_per_rank: u32,
    banks_per_channel: u32,
    /// Busy-until per (channel, rank).
    rank_busy: Vec<Ps>,
    /// Busy-until per (channel, flat bank).
    bank_busy: Vec<Ps>,
}

impl TrfcOverlap {
    /// Builds the checker for `scope`.
    ///
    /// FGR modes legally shrink `tRFC` below the 1x value (and Adaptive
    /// switches modes at runtime), so the checker windows use the
    /// *shortest* `tRFC` the policy may use — an under-approximation
    /// that can miss marginal overlaps but never flags a legal command.
    pub fn new(scope: &AuditScope) -> Self {
        let ranks = scope.banks_per_channel / scope.banks_per_rank.max(1);
        let trfc_ab = match scope.policy {
            RefreshPolicyKind::Fgr(m) => m.scale_trfc(scope.trfc_ab),
            RefreshPolicyKind::Adaptive => FgrMode::X4.scale_trfc(scope.trfc_ab),
            _ => scope.trfc_ab,
        };
        TrfcOverlap {
            trfc_ab,
            trfc_pb: scope.trfc_pb,
            banks_per_rank: scope.banks_per_rank.max(1),
            banks_per_channel: scope.banks_per_channel,
            rank_busy: vec![Ps::ZERO; (scope.channels * ranks) as usize],
            bank_busy: vec![Ps::ZERO; (scope.channels * scope.banks_per_channel) as usize],
        }
    }
}

impl Checker for TrfcOverlap {
    fn name(&self) -> &'static str {
        "dram.trfc_overlap"
    }
    fn layer(&self) -> Layer {
        Layer::Dram
    }
    fn on_event(&mut self, ev: &Event, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        let Event::DramCmd {
            channel,
            at,
            cmd,
            rank,
            bank,
        } = ev
        else {
            return;
        };
        let ranks = (self.banks_per_channel / self.banks_per_rank) as usize;
        let r_idx = *channel as usize * ranks + *rank as usize;
        let rank_base = *channel as usize * self.banks_per_channel as usize
            + *rank as usize * self.banks_per_rank as usize;
        let mut offend = None;
        if self.rank_busy.get(r_idx).is_some_and(|&end| end > *at) {
            offend = Some(format!(
                "{cmd:?} to rank {rank} at {at} inside rank tRFC window (busy until {})",
                self.rank_busy[r_idx]
            ));
        } else if *bank != u8::MAX {
            let f_idx = rank_base + *bank as usize;
            if self.bank_busy.get(f_idx).is_some_and(|&end| end > *at) {
                offend = Some(format!(
                    "{cmd:?} to bank {bank} of rank {rank} at {at} inside bank tRFC \
                     window (busy until {})",
                    self.bank_busy[f_idx]
                ));
            }
        } else if matches!(cmd, TraceCmd::RefAb) {
            // Rank-wide refresh must also wait out every per-bank window.
            for b in 0..self.banks_per_rank as usize {
                if self
                    .bank_busy
                    .get(rank_base + b)
                    .is_some_and(|&end| end > *at)
                {
                    offend = Some(format!(
                        "RefAb to rank {rank} at {at} overlaps bank {b} tRFC window \
                         (busy until {})",
                        self.bank_busy[rank_base + b]
                    ));
                    break;
                }
            }
        }
        if let Some(evidence) = offend {
            sink.emit(
                name,
                layer,
                Severity::Error,
                *at,
                format!("channel {channel}: {evidence}"),
            );
        }
        match cmd {
            TraceCmd::RefAb => {
                if let Some(slot) = self.rank_busy.get_mut(r_idx) {
                    *slot = *at + self.trfc_ab;
                }
            }
            TraceCmd::RefPb => {
                if let Some(slot) = self.bank_busy.get_mut(rank_base + *bank as usize) {
                    *slot = *at + self.trfc_pb;
                }
            }
            _ => {}
        }
    }
}

/// Algorithm 1 contiguity: under the sequential per-bank schedule,
/// refreshes within a rank must walk the banks in order — consecutive
/// `REFpb` commands may stay on the same bank (finishing its rows) or
/// advance to the next bank, never jump.
#[derive(Debug)]
pub struct SeqContiguity {
    banks_per_rank: u32,
    banks_per_channel: u32,
    /// Last refreshed bank per (channel, rank).
    last: Vec<Option<u8>>,
}

impl SeqContiguity {
    /// Builds the checker for `scope`.
    pub fn new(scope: &AuditScope) -> Self {
        let ranks = scope.banks_per_channel / scope.banks_per_rank.max(1);
        SeqContiguity {
            banks_per_rank: scope.banks_per_rank.max(1),
            banks_per_channel: scope.banks_per_channel,
            last: vec![None; (scope.channels * ranks) as usize],
        }
    }
}

impl Checker for SeqContiguity {
    fn name(&self) -> &'static str {
        "dram.seq_contiguity"
    }
    fn layer(&self) -> Layer {
        Layer::Dram
    }
    fn on_event(&mut self, ev: &Event, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        let Event::DramCmd {
            channel,
            at,
            cmd: TraceCmd::RefPb,
            rank,
            bank,
        } = ev
        else {
            return;
        };
        let ranks = (self.banks_per_channel / self.banks_per_rank) as usize;
        let Some(slot) = self
            .last
            .get_mut(*channel as usize * ranks + *rank as usize)
        else {
            return;
        };
        if let Some(prev) = *slot {
            let next = (prev + 1) % self.banks_per_rank as u8;
            if *bank != prev && *bank != next {
                sink.emit(
                    name,
                    layer,
                    Severity::Error,
                    *at,
                    format!(
                        "channel {channel} rank {rank}: sequential schedule jumped \
                         from bank {prev} to bank {bank} (expected {prev} or {next})"
                    ),
                );
            }
        }
        *slot = Some(*bank);
    }
}

// ---------------------------------------------------------------------
// OS-layer checkers
// ---------------------------------------------------------------------

/// Surfaces the buddy allocator's structural self-audit (double frees,
/// lost frames, split/merge inconsistencies) as violations. Identical
/// consecutive findings are deduplicated so a wedged allocator reports
/// once per distinct problem.
#[derive(Debug, Default)]
pub struct BuddyConsistency {
    last: Option<String>,
}

impl Checker for BuddyConsistency {
    fn name(&self) -> &'static str {
        "os.buddy_consistency"
    }
    fn layer(&self) -> Layer {
        Layer::Os
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        match (&s.alloc_audit, &self.last) {
            (Some(msg), Some(prev)) if msg == prev => {}
            (Some(msg), _) => {
                sink.emit(
                    name,
                    layer,
                    Severity::Error,
                    s.now,
                    format!("buddy allocator inconsistent: {msg}"),
                );
                self.last = Some(msg.clone());
            }
            (None, _) => self.last = None,
        }
    }
}

const PAGE_BYTES: u64 = 4096;

/// Algorithm 2 isolation: a page may land outside a task's permitted
/// banks only as an explicitly recorded soft-partition spill, and a
/// hard partition may never spill at all.
#[derive(Debug)]
pub struct PartitionIsolation {
    hard: bool,
    spill_fired: Vec<bool>,
}

impl PartitionIsolation {
    /// Builds the checker for `scope`.
    pub fn new(scope: &AuditScope) -> Self {
        PartitionIsolation {
            hard: scope.hard_partition,
            spill_fired: vec![false; scope.n_tasks as usize],
        }
    }
}

impl Checker for PartitionIsolation {
    fn name(&self) -> &'static str {
        "os.partition_isolation"
    }
    fn layer(&self) -> Layer {
        Layer::Os
    }
    fn on_event(&mut self, ev: &Event, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        let Event::PageAlloc {
            task,
            bank,
            permitted,
            fell_back,
            hard,
            at,
        } = ev
        else {
            return;
        };
        let allowed = *bank < 64 && (permitted >> bank) & 1 == 1;
        if !allowed && (*hard || !*fell_back) {
            sink.emit(
                name,
                layer,
                Severity::Error,
                *at,
                format!(
                    "task {task}: page allocated on bank {bank} outside permitted \
                     mask {permitted:#x} ({})",
                    if *hard {
                        "hard partition"
                    } else {
                        "not recorded as a spill"
                    }
                ),
            );
        }
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        for t in &s.tasks {
            let fired = self
                .spill_fired
                .get_mut(t.id as usize)
                .map(|f| std::mem::replace(f, true));
            let already = fired == Some(true);
            if already {
                continue;
            }
            if self.hard && t.spilled_pages > 0 {
                sink.emit(
                    name,
                    layer,
                    Severity::Error,
                    s.now,
                    format!(
                        "task {}: {} page(s) spilled under a hard partition",
                        t.id, t.spilled_pages
                    ),
                );
            } else if t.outside_bytes > t.spilled_pages * PAGE_BYTES {
                sink.emit(
                    name,
                    layer,
                    Severity::Error,
                    s.now,
                    format!(
                        "task {}: {} bytes outside partition but only {} spill \
                         page(s) recorded",
                        t.id, t.outside_bytes, t.spilled_pages
                    ),
                );
            } else if let Some(f) = self.spill_fired.get_mut(t.id as usize) {
                // Nothing wrong: release the latch taken above.
                *f = false;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TaskWatch {
    schedules: u64,
    base_picks: u64,
    fired: bool,
}

/// Algorithm 3 starvation bound: a runnable task whose `schedules`
/// counter stays flat while the scheduler makes far more picks than the
/// `η`-bounded fallback could ever require is being starved. Reported
/// as a warning (the bound is conservative, not exact).
#[derive(Debug)]
pub struct EtaStarvation {
    bound: u64,
    watch: HashMap<u32, TaskWatch>,
}

impl EtaStarvation {
    /// Builds the checker for `scope`.
    pub fn new(scope: &AuditScope) -> Self {
        let eta = u64::from(scope.eta.unwrap_or(0));
        // A runnable task must be picked within ~n_tasks picks under
        // CFS; η best-effort can defer it at most η more rounds. The
        // ×64 margin keeps this a true-positive-only bound.
        let bound = (u64::from(scope.n_tasks) + eta + 1) * 64 * u64::from(scope.n_cores.max(1));
        EtaStarvation {
            bound,
            watch: HashMap::new(),
        }
    }
}

impl Checker for EtaStarvation {
    fn name(&self) -> &'static str {
        "os.eta_starvation"
    }
    fn layer(&self) -> Layer {
        Layer::Os
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        for t in &s.tasks {
            if !t.runnable {
                self.watch.remove(&t.id);
                continue;
            }
            let w = self.watch.entry(t.id).or_insert(TaskWatch {
                schedules: t.schedules,
                base_picks: s.sched.picks,
                fired: false,
            });
            if t.schedules != w.schedules {
                w.schedules = t.schedules;
                w.base_picks = s.sched.picks;
                w.fired = false;
                continue;
            }
            let stagnant = s.sched.picks.saturating_sub(w.base_picks);
            if stagnant > self.bound && !w.fired {
                w.fired = true;
                sink.emit(
                    name,
                    layer,
                    Severity::Warning,
                    s.now,
                    format!(
                        "task {}: runnable but unscheduled for {stagnant} picks \
                         (η starvation bound {})",
                        t.id, self.bound
                    ),
                );
            }
        }
    }
}

/// Scheduler fallback-counter sanity: `η` fallbacks and refresh dodges
/// can never exceed total picks, and all scheduler counters are
/// monotone (they are never reset during a run).
#[derive(Debug, Default)]
pub struct FallbackSanity {
    prev: Option<SchedSample>,
    fired: bool,
}

impl Checker for FallbackSanity {
    fn name(&self) -> &'static str {
        "os.fallback_sanity"
    }
    fn layer(&self) -> Layer {
        Layer::Os
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        if self.fired {
            return;
        }
        let c = s.sched;
        let mut problem = None;
        if c.eta_fallbacks > c.picks {
            problem = Some(format!(
                "eta_fallbacks {} exceeds picks {}",
                c.eta_fallbacks, c.picks
            ));
        } else if c.refresh_dodges > c.picks {
            problem = Some(format!(
                "refresh_dodges {} exceeds picks {}",
                c.refresh_dodges, c.picks
            ));
        } else if let Some(p) = self.prev {
            if c.picks < p.picks
                || c.eta_fallbacks < p.eta_fallbacks
                || c.refresh_dodges < p.refresh_dodges
                || c.migrations < p.migrations
            {
                problem = Some(format!("scheduler counter regressed: {c:?} after {p:?}"));
            }
        }
        if let Some(evidence) = problem {
            self.fired = true;
            sink.emit(name, layer, Severity::Error, s.now, evidence);
        }
        self.prev = Some(c);
    }
}

// ---------------------------------------------------------------------
// Cross-layer checkers
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct ChanSync {
    seen: bool,
    prev_viol: u64,
    rows_sum: u64,
    last_progress_at: Ps,
    dead_fired: bool,
}

/// Cross-checks the memory controller against the retention oracle:
/// every violation the [`refsim_dram::integrity::RetentionTracker`]
/// charges is mirrored as a sanitizer finding, and a refresh engine
/// that stops refreshing rows entirely (e.g. a wedged or fully skipped
/// policy) is reported even when the oracle is disabled.
#[derive(Debug)]
pub struct RetentionSync {
    window: Ps,
    refresh_expected: bool,
    chans: Vec<ChanSync>,
}

impl RetentionSync {
    /// Builds the checker for `scope`.
    pub fn new(scope: &AuditScope) -> Self {
        RetentionSync {
            window: scope.completeness_window(),
            refresh_expected: scope.policy != RefreshPolicyKind::NoRefresh,
            chans: vec![ChanSync::default(); scope.channels as usize],
        }
    }
}

impl Checker for RetentionSync {
    fn name(&self) -> &'static str {
        "xlayer.retention_sync"
    }
    fn layer(&self) -> Layer {
        Layer::Cross
    }
    fn on_stats_reset(&mut self) {
        for st in &mut self.chans {
            st.seen = false;
        }
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        for (ch, chan) in s.chans.iter().enumerate() {
            let Some(st) = self.chans.get_mut(ch) else {
                continue;
            };
            let rows_sum: u64 = chan.rows_refreshed.iter().sum();
            if !st.seen {
                *st = ChanSync {
                    seen: true,
                    prev_viol: chan.oracle_violations,
                    rows_sum,
                    last_progress_at: s.now,
                    dead_fired: false,
                };
                continue;
            }
            if chan.oracle_enabled {
                if chan.oracle_violations < st.prev_viol {
                    // Stats were reset (measurement began); re-base.
                    st.prev_viol = chan.oracle_violations;
                } else if chan.oracle_violations > st.prev_viol {
                    let delta = chan.oracle_violations - st.prev_viol;
                    st.prev_viol = chan.oracle_violations;
                    sink.emit(
                        name,
                        layer,
                        Severity::Error,
                        s.now,
                        format!(
                            "channel {ch}: retention oracle charged {delta} new \
                             violation(s) ({} total)",
                            chan.oracle_violations
                        ),
                    );
                }
            }
            if rows_sum > st.rows_sum {
                st.rows_sum = rows_sum;
                st.last_progress_at = s.now;
                st.dead_fired = false;
            } else if self.refresh_expected
                && !st.dead_fired
                && s.now > st.last_progress_at + self.window
            {
                st.dead_fired = true;
                sink.emit(
                    name,
                    layer,
                    Severity::Error,
                    s.now,
                    format!(
                        "channel {ch}: refresh engine refreshed no rows for {} \
                         (> window {})",
                        s.now - st.last_progress_at,
                        self.window
                    ),
                );
            }
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ChanLedger {
    seen: bool,
    carry_r: i128,
    carry_w: i128,
    prev_renq: u64,
    prev_wenq: u64,
    fired: bool,
}

/// Stats conservation: at every observation point, queue depth must
/// equal accepted-minus-completed traffic (store-forwarded reads never
/// enter the queue), and the system-wide in-flight fill count must
/// match the sum of per-core outstanding misses.
#[derive(Debug, Default)]
pub struct Conservation {
    chans: Vec<ChanLedger>,
    inflight_fired: bool,
    stall_fired: bool,
}

impl Conservation {
    fn queued(chan: &ChannelSample) -> (i128, i128) {
        let qr = i128::from(chan.reads_enqueued)
            - (i128::from(chan.reads_completed) - i128::from(chan.forwarded_reads));
        let qw = i128::from(chan.writes_enqueued) - i128::from(chan.writes_completed);
        (qr, qw)
    }
}

impl Checker for Conservation {
    fn name(&self) -> &'static str {
        "xlayer.conservation"
    }
    fn layer(&self) -> Layer {
        Layer::Cross
    }
    fn on_stats_reset(&mut self) {
        for st in &mut self.chans {
            st.seen = false;
        }
    }
    fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
        let (name, layer) = (self.name(), self.layer());
        if self.chans.len() < s.chans.len() {
            self.chans.resize(s.chans.len(), ChanLedger::default());
        }
        for (ch, chan) in s.chans.iter().enumerate() {
            let Some(st) = self.chans.get_mut(ch) else {
                continue;
            };
            let (qr, qw) = Conservation::queued(chan);
            let reset = !st.seen
                || chan.reads_enqueued < st.prev_renq
                || chan.writes_enqueued < st.prev_wenq;
            if reset {
                // First sample, or begin_measure zeroed the counters
                // while the queues kept their contents: re-base.
                st.seen = true;
                st.carry_r = i128::from(chan.read_q) - qr;
                st.carry_w = i128::from(chan.write_q) - qw;
            } else if !st.fired
                && (i128::from(chan.read_q) != st.carry_r + qr
                    || i128::from(chan.write_q) != st.carry_w + qw)
            {
                st.fired = true;
                sink.emit(
                    name,
                    layer,
                    Severity::Error,
                    s.now,
                    format!(
                        "channel {ch}: queue depths (r={}, w={}) disagree with \
                         ledger (enq {}/{}, done {}/{}, fwd {}, carry {}/{})",
                        chan.read_q,
                        chan.write_q,
                        chan.reads_enqueued,
                        chan.writes_enqueued,
                        chan.reads_completed,
                        chan.writes_completed,
                        chan.forwarded_reads,
                        st.carry_r,
                        st.carry_w
                    ),
                );
            }
            st.prev_renq = chan.reads_enqueued;
            st.prev_wenq = chan.writes_enqueued;
        }
        let outstanding: u64 = s.cores.iter().map(|c| c.outstanding).sum();
        if s.inflight_fills != outstanding && !self.inflight_fired {
            self.inflight_fired = true;
            sink.emit(
                name,
                layer,
                Severity::Error,
                s.now,
                format!(
                    "{} fills in flight but cores report {outstanding} outstanding",
                    s.inflight_fills
                ),
            );
        }
        if !self.stall_fired {
            for (i, c) in s.cores.iter().enumerate() {
                if c.stall_time > c.now {
                    self.stall_fired = true;
                    sink.emit(
                        name,
                        layer,
                        Severity::Error,
                        s.now,
                        format!(
                            "core {i}: stall time {} exceeds core clock {}",
                            c.stall_time, c.now
                        ),
                    );
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> AuditScope {
        AuditScope {
            policy: RefreshPolicyKind::PerBankSequential,
            trefw: Ps::from_us(100),
            trefi_ab: Ps::from_us(7),
            trfc_ab: Ps::from_ns(890),
            trfc_pb: Ps::from_ns(387),
            slice: Ps::from_us(100) / 16,
            banks_per_channel: 16,
            banks_per_rank: 8,
            channels: 1,
            rows_per_bank: 1000,
            hard_partition: false,
            eta: Some(4),
            n_cores: 2,
            n_tasks: 4,
        }
    }

    fn sample(now: Ps) -> QuantumSample {
        QuantumSample {
            now,
            quantum: now.as_us(),
            chans: vec![ChannelSample {
                rows_refreshed: vec![0; 16],
                ..ChannelSample::default()
            }],
            ..QuantumSample::default()
        }
    }

    fn drive(checker: &mut dyn Checker, samples: &[QuantumSample]) -> ViolationReport {
        let mut sink = Sink::default();
        for s in samples {
            sink.quantum = s.quantum;
            sink.now = s.now;
            checker.on_quantum(s, &mut sink);
        }
        sink.into_report()
    }

    fn assert_single(report: &ViolationReport, checker: &'static str, layer: Layer) {
        assert_eq!(report.total, 1, "expected exactly one violation: {report}");
        let v = &report.violations[0];
        assert_eq!(v.checker, checker);
        assert_eq!(v.layer, layer);
    }

    #[test]
    fn completeness_fires_once_for_stalled_bank() {
        let sc = scope();
        let mut c = RefreshCompleteness::new(&sc);
        let window = sc.completeness_window();
        let s0 = sample(Ps::ZERO);
        let mut s1 = sample(window + Ps::from_ns(1));
        for (b, rows) in s1.chans[0].rows_refreshed.iter_mut().enumerate() {
            *rows = if b == 3 { 0 } else { 1000 };
        }
        // A third sample shortly after must NOT re-fire (re-based).
        let mut s2 = s1.clone();
        s2.now = s1.now + Ps::from_us(1);
        let report = drive(&mut c, &[s0, s1, s2]);
        assert_single(&report, "dram.refresh_completeness", Layer::Dram);
        assert!(report.violations[0].evidence.contains("bank 3"));
    }

    #[test]
    fn completeness_quiet_when_sweeps_complete() {
        let sc = scope();
        let mut c = RefreshCompleteness::new(&sc);
        let s0 = sample(Ps::ZERO);
        let mut s1 = sample(sc.completeness_window() * 3);
        for rows in s1.chans[0].rows_refreshed.iter_mut() {
            *rows = 3000; // three full sweeps in three windows
        }
        assert_eq!(drive(&mut c, &[s0, s1]).total, 0);
    }

    #[test]
    fn debt_fires_once_and_latches() {
        let sc = scope();
        let mut c = RefreshDebt::new(&sc);
        let mut s = sample(Ps::from_us(50));
        s.chans[0].postpone_max = sc.trefi_ab * 20;
        let later = s.clone();
        let report = drive(&mut c, &[s, later]);
        assert_single(&report, "dram.refresh_debt", Layer::Dram);
    }

    #[test]
    fn trfc_overlap_flags_command_in_refresh_window() {
        let sc = scope();
        let mut c = TrfcOverlap::new(&sc);
        let mut sink = Sink::default();
        let refresh = Event::DramCmd {
            channel: 0,
            at: Ps::from_ns(1000),
            cmd: TraceCmd::RefPb,
            rank: 0,
            bank: 0,
        };
        let legal = Event::DramCmd {
            channel: 0,
            at: Ps::from_ns(1100),
            cmd: TraceCmd::Act { row: 7 },
            rank: 0,
            bank: 1, // different bank: allowed during REFpb
        };
        let illegal = Event::DramCmd {
            channel: 0,
            at: Ps::from_ns(1200),
            cmd: TraceCmd::Rd,
            rank: 0,
            bank: 0, // same bank, still inside the 387 ns tRFCpb
        };
        c.on_event(&refresh, &mut sink);
        c.on_event(&legal, &mut sink);
        c.on_event(&illegal, &mut sink);
        let report = sink.into_report();
        assert_single(&report, "dram.trfc_overlap", Layer::Dram);
        assert!(report.violations[0].evidence.contains("bank 0"));
    }

    #[test]
    fn trfc_overlap_flags_overlapping_rank_refreshes() {
        let sc = scope();
        let mut c = TrfcOverlap::new(&sc);
        let mut sink = Sink::default();
        let first = Event::DramCmd {
            channel: 0,
            at: Ps::from_ns(1000),
            cmd: TraceCmd::RefAb,
            rank: 1,
            bank: u8::MAX,
        };
        let second = Event::DramCmd {
            channel: 0,
            at: Ps::from_ns(1200),
            cmd: TraceCmd::RefAb,
            rank: 1,
            bank: u8::MAX,
        };
        c.on_event(&first, &mut sink);
        c.on_event(&second, &mut sink);
        assert_single(&sink.into_report(), "dram.trfc_overlap", Layer::Dram);
    }

    #[test]
    fn seq_contiguity_flags_bank_jump() {
        let sc = scope();
        let mut c = SeqContiguity::new(&sc);
        let mut sink = Sink::default();
        for (i, bank) in [0u8, 0, 1, 5].into_iter().enumerate() {
            c.on_event(
                &Event::DramCmd {
                    channel: 0,
                    at: Ps::from_us(i as u64),
                    cmd: TraceCmd::RefPb,
                    rank: 0,
                    bank,
                },
                &mut sink,
            );
        }
        let report = sink.into_report();
        assert_single(&report, "dram.seq_contiguity", Layer::Dram);
        assert!(report.violations[0].evidence.contains("bank 1 to bank 5"));
    }

    #[test]
    fn buddy_consistency_dedupes_identical_findings() {
        let mut c = BuddyConsistency::default();
        let mut s = sample(Ps::from_us(1));
        s.alloc_audit = Some("frame 42 double-freed".into());
        let again = s.clone();
        let report = drive(&mut c, &[s, again]);
        assert_single(&report, "os.buddy_consistency", Layer::Os);
        assert!(report.violations[0].evidence.contains("frame 42"));
    }

    #[test]
    fn partition_isolation_flags_out_of_mask_alloc() {
        let sc = scope();
        let mut c = PartitionIsolation::new(&sc);
        let mut sink = Sink::default();
        // Recorded spill under a soft partition: legal.
        c.on_event(
            &Event::PageAlloc {
                task: 1,
                bank: 9,
                permitted: 0b111,
                fell_back: true,
                hard: false,
                at: Ps::from_us(1),
            },
            &mut sink,
        );
        // Unrecorded escape: violation.
        c.on_event(
            &Event::PageAlloc {
                task: 1,
                bank: 9,
                permitted: 0b111,
                fell_back: false,
                hard: false,
                at: Ps::from_us(2),
            },
            &mut sink,
        );
        let report = sink.into_report();
        assert_single(&report, "os.partition_isolation", Layer::Os);
        assert!(report.violations[0].evidence.contains("bank 9"));
    }

    #[test]
    fn partition_isolation_flags_hard_partition_spill() {
        let sc = AuditScope {
            hard_partition: true,
            ..scope()
        };
        let mut c = PartitionIsolation::new(&sc);
        let mut s = sample(Ps::from_us(3));
        s.tasks = vec![TaskSample {
            id: 2,
            runnable: true,
            spilled_pages: 1,
            ..TaskSample::default()
        }];
        let again = s.clone();
        let report = drive(&mut c, &[s, again]);
        assert_single(&report, "os.partition_isolation", Layer::Os);
        assert!(report.violations[0].evidence.contains("hard partition"));
    }

    #[test]
    fn eta_starvation_warns_on_stagnant_runnable_task() {
        let sc = scope();
        let mut c = EtaStarvation::new(&sc);
        let mut s0 = sample(Ps::from_us(1));
        s0.tasks = vec![TaskSample {
            id: 1,
            runnable: true,
            schedules: 5,
            ..TaskSample::default()
        }];
        s0.sched.picks = 0;
        let mut s1 = s0.clone();
        s1.now = Ps::from_us(2);
        s1.sched.picks = c.bound + 1;
        let later = s1.clone();
        let report = drive(&mut c, &[s0, s1, later]);
        assert_eq!(report.total, 1, "{report}");
        assert_eq!(report.errors, 0, "starvation is a warning");
        assert_eq!(report.violations[0].checker, "os.eta_starvation");
        assert_eq!(report.violations[0].severity, Severity::Warning);
    }

    #[test]
    fn fallback_sanity_flags_impossible_counters() {
        let mut c = FallbackSanity::default();
        let mut s = sample(Ps::from_us(1));
        s.sched = SchedSample {
            picks: 5,
            eta_fallbacks: 10,
            ..SchedSample::default()
        };
        let report = drive(&mut c, &[s]);
        assert_single(&report, "os.fallback_sanity", Layer::Os);
    }

    #[test]
    fn fallback_sanity_flags_counter_regression() {
        let mut c = FallbackSanity::default();
        let mut s0 = sample(Ps::from_us(1));
        s0.sched.picks = 100;
        let mut s1 = sample(Ps::from_us(2));
        s1.sched.picks = 50;
        let report = drive(&mut c, &[s0, s1]);
        assert_single(&report, "os.fallback_sanity", Layer::Os);
    }

    #[test]
    fn retention_sync_mirrors_oracle_violations() {
        let sc = scope();
        let mut c = RetentionSync::new(&sc);
        let mut s0 = sample(Ps::from_us(1));
        s0.chans[0].oracle_enabled = true;
        s0.chans[0].rows_refreshed = vec![1; 16];
        let mut s1 = s0.clone();
        s1.now = Ps::from_us(2);
        s1.chans[0].oracle_violations = 2;
        s1.chans[0].rows_refreshed = vec![2; 16];
        let report = drive(&mut c, &[s0, s1]);
        assert_single(&report, "xlayer.retention_sync", Layer::Cross);
        assert!(report.violations[0].evidence.contains("2 new"));
    }

    #[test]
    fn retention_sync_flags_dead_refresh_engine() {
        let sc = scope();
        let mut c = RetentionSync::new(&sc);
        let s0 = sample(Ps::ZERO);
        let s1 = sample(sc.completeness_window() + Ps::from_ns(1));
        let report = drive(&mut c, &[s0, s1]);
        assert_single(&report, "xlayer.retention_sync", Layer::Cross);
        assert!(report.violations[0].evidence.contains("no rows"));
    }

    #[test]
    fn conservation_flags_queue_ledger_mismatch() {
        let mut c = Conservation::default();
        let mut s0 = sample(Ps::from_us(1));
        s0.chans[0].reads_enqueued = 10;
        s0.chans[0].reads_completed = 4;
        s0.chans[0].read_q = 6;
        let mut s1 = s0.clone();
        s1.now = Ps::from_us(2);
        s1.chans[0].reads_enqueued = 12;
        s1.chans[0].reads_completed = 5;
        s1.chans[0].read_q = 3; // ledger says 7
        let report = drive(&mut c, &[s0, s1]);
        assert_single(&report, "xlayer.conservation", Layer::Cross);
        assert!(report.violations[0].evidence.contains("ledger"));
    }

    #[test]
    fn conservation_survives_stats_reset() {
        let mut c = Conservation::default();
        let mut s0 = sample(Ps::from_us(1));
        s0.chans[0].reads_enqueued = 10;
        s0.chans[0].reads_completed = 4;
        s0.chans[0].read_q = 6;
        // begin_measure zeroed counters but the queue kept 6 entries.
        let mut s1 = sample(Ps::from_us(2));
        s1.chans[0].read_q = 6;
        // Normal progress on the re-based ledger.
        let mut s2 = sample(Ps::from_us(3));
        s2.chans[0].reads_enqueued = 4;
        s2.chans[0].reads_completed = 8;
        s2.chans[0].read_q = 2;
        assert_eq!(drive(&mut c, &[s0, s1, s2]).total, 0);
    }

    #[test]
    fn conservation_flags_inflight_mismatch() {
        let mut c = Conservation::default();
        let mut s = sample(Ps::from_us(1));
        s.inflight_fills = 4;
        s.cores = vec![CoreSample {
            outstanding: 1,
            ..CoreSample::default()
        }];
        let report = drive(&mut c, &[s]);
        assert_single(&report, "xlayer.conservation", Layer::Cross);
    }

    #[test]
    fn standard_catalog_matches_policy() {
        let names = |sc: &AuditScope| -> Vec<&'static str> {
            standard_checkers(sc).iter().map(|c| c.name()).collect()
        };
        let seq = names(&scope());
        assert!(seq.contains(&"dram.seq_contiguity"));
        assert!(seq.contains(&"os.eta_starvation"));
        let none = names(&AuditScope {
            policy: RefreshPolicyKind::NoRefresh,
            eta: None,
            ..scope()
        });
        assert!(!none.contains(&"dram.refresh_completeness"));
        assert!(!none.contains(&"dram.seq_contiguity"));
        assert!(!none.contains(&"os.eta_starvation"));
        assert!(none.contains(&"xlayer.conservation"));
    }

    #[test]
    fn sampled_level_checks_every_16th_quantum() {
        struct Tick;
        impl Checker for Tick {
            fn name(&self) -> &'static str {
                "test.tick"
            }
            fn layer(&self) -> Layer {
                Layer::Cross
            }
            fn on_quantum(&mut self, s: &QuantumSample, sink: &mut Sink) {
                sink.emit(
                    self.name(),
                    self.layer(),
                    Severity::Warning,
                    s.now,
                    "tick".into(),
                );
            }
        }
        let mut san = Sanitizer::new(AuditLevel::Sampled, vec![Box::new(Tick)]);
        for q in 0..32 {
            if san.begin_quantum() {
                san.on_quantum(&sample(Ps::from_us(q)));
            }
        }
        // Quanta 1 and 17 are sampled; finish() always delivers one more.
        let report = san.finish(&sample(Ps::from_us(33)));
        assert_eq!(report.total, 3);
        assert!(report.is_clean(), "warnings don't fail the run");
    }

    #[test]
    fn report_formats_and_groups() {
        let mut sink = Sink {
            quantum: 3,
            ..Sink::default()
        };
        sink.emit(
            "dram.refresh_debt",
            Layer::Dram,
            Severity::Error,
            Ps::from_us(9),
            "postponed too long".into(),
        );
        sink.emit(
            "dram.refresh_debt",
            Layer::Dram,
            Severity::Warning,
            Ps::from_us(10),
            "again".into(),
        );
        let report = sink.into_report();
        assert_eq!(report.total, 2);
        assert_eq!(report.errors, 1);
        assert!(!report.is_clean());
        assert_eq!(report.by_checker(), vec![("dram.refresh_debt", 2)]);
        let s = report.to_string();
        assert!(s.contains("dram.refresh_debt"), "{s}");
        assert!(s.contains("q3"), "{s}");
    }
}

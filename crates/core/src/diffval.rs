//! Differential cross-validation of the two memory backends.
//!
//! The primary controller ([`refsim_dram::controller`]) and the shadow
//! model ([`refsim_dram::shadow`]) implement the same
//! [`MemoryBackend`](refsim_dram::backend::MemoryBackend) contract with
//! deliberately independent internals. This module turns that
//! redundancy into a checkable oracle: [`cross_validate`] runs the same
//! `(config, mix)` on both backends, compares the run metrics within
//! calibrated per-metric tolerances, and — when they disagree —
//! classifies and triages the disagreement before surfacing it as
//! [`RefsimError::BackendDivergence`].
//!
//! Two disagreement classes:
//!
//! * [`DivergenceClass::ToleranceExceeded`] — both backends followed the
//!   same refresh protocol but an approximate metric (IPC, latency,
//!   utilization) drifted past its tolerance. Usually a timing-model
//!   calibration question, not a correctness bug.
//! * [`DivergenceClass::ProtocolDivergent`] — an exact protocol counter
//!   (refresh issues, rows refreshed, retention violations, completed
//!   reads) disagrees. One of the models is wrong.
//!
//! Which counters are "exact" depends on the policy: the
//! utilization-feedback policies (adaptive, elastic) legitimately issue
//! different refresh counts in two honest models (see
//! [`Tolerances::counts_are_protocol`]), so for those the
//! retention-integrity oracle — armed in every cross-validated run —
//! carries the protocol check instead.
//!
//! Protocol divergences are triaged with the replay auditor's span
//! machinery: both backends first self-verify (two runs of the same
//! backend must be bit-identical — rules out nondeterminism), then both
//! systems are stepped through the same [`span_boundaries`] in lockstep
//! while a [`ProtocolDigest`] is folded across channels at each
//! boundary; the first quantum whose digests differ is attributed in
//! the report.

use std::fmt;

use refsim_dram::backend::BackendKind;
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::FgrMode;
use refsim_workloads::mix::WorkloadMix;

use crate::config::SystemConfig;
use crate::error::RefsimError;
use crate::metrics::RunMetrics;
use crate::replay::{replay_verify, span_boundaries, ReplayOptions};
use crate::system::System;

/// The eight refresh policies the cross-validation matrix covers — the
/// same pool the paper's figures sweep.
pub const POLICY_MATRIX: [RefreshPolicyKind; 8] = [
    RefreshPolicyKind::NoRefresh,
    RefreshPolicyKind::AllBank,
    RefreshPolicyKind::PerBankRoundRobin,
    RefreshPolicyKind::PerBankSequential,
    RefreshPolicyKind::OooPerBank,
    RefreshPolicyKind::Fgr(FgrMode::X4),
    RefreshPolicyKind::Adaptive,
    RefreshPolicyKind::Elastic,
];

/// Per-metric tolerance: a disagreement is accepted while
/// `|a - b| <= max(abs, rel * max(|a|, |b|))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricTol {
    /// Relative slack (fraction of the larger magnitude).
    pub rel: f64,
    /// Absolute slack floor (dominates near zero).
    pub abs: f64,
}

impl MetricTol {
    /// Whether `a` and `b` agree within this tolerance.
    #[must_use]
    pub fn accepts(&self, a: f64, b: f64) -> bool {
        let slack = self.abs.max(self.rel * a.abs().max(b.abs()));
        (a - b).abs() <= slack
    }
}

/// Calibrated tolerances for every cross-checked metric.
///
/// The defaults were calibrated on the Table 1 configuration across all
/// eight refresh policies at time-scale 512: the primary model arbitrates
/// a shared command bus the shadow deliberately omits, so throughput
/// metrics carry a few percent of honest modeling slack, while protocol
/// counters (refresh issues, retention violations) must agree almost
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Harmonic-mean IPC (relative).
    pub hmean_ipc: MetricTol,
    /// Average read latency in DRAM cycles (relative).
    pub read_latency: MetricTol,
    /// Row-buffer hit rate (absolute, on a 0..1 scale).
    pub row_hit_rate: MetricTol,
    /// Data-bus utilization (absolute, on a 0..1 scale).
    pub bus_utilization: MetricTol,
    /// Reads completed in the measured window (relative).
    pub reads_completed: MetricTol,
    /// Total refreshes issued (near-exact: window-edge slack only).
    pub refreshes_total: MetricTol,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            hmean_ipc: MetricTol {
                rel: 0.10,
                abs: 1e-6,
            },
            read_latency: MetricTol {
                rel: 0.20,
                abs: 2.0,
            },
            // Row locality is feedback-amplified: the service order
            // changes when each core's next request arrives, which
            // changes the locality that order sees. Two independently
            // written schedulers honestly disagree a lot here, so this
            // is a diagnostic-grade bound, not a protocol check.
            row_hit_rate: MetricTol {
                rel: 0.0,
                abs: 0.60,
            },
            bus_utilization: MetricTol {
                rel: 0.0,
                abs: 0.05,
            },
            reads_completed: MetricTol {
                rel: 0.10,
                abs: 16.0,
            },
            // Near-exact for schedule-driven policies: only window-edge
            // slack (a refresh straddling the measurement boundary is
            // counted by one model and not the other).
            refreshes_total: MetricTol {
                rel: 0.05,
                abs: 4.0,
            },
        }
    }
}

impl Tolerances {
    /// Whether refresh counts are schedule-exact under `policy`.
    ///
    /// The adaptive and elastic policies close a feedback loop on each
    /// model's *own* observed bus utilization: adaptive flips its rate
    /// multiplier at a hard utilization threshold, and elastic decides
    /// postponement from live queue state. Two honest models whose
    /// utilization differs by a fraction of a percent can cross such a
    /// threshold at different epochs, after which their refresh counts
    /// legitimately drift by tens of percent. For those policies the
    /// count is diagnostic, and the retention-integrity oracle (exact
    /// on both backends) is the protocol check instead.
    #[must_use]
    pub fn counts_are_protocol(policy: RefreshPolicyKind) -> bool {
        !matches!(
            policy,
            RefreshPolicyKind::Adaptive | RefreshPolicyKind::Elastic
        )
    }

    /// The tolerances actually applied under `policy`: the calibrated
    /// defaults for schedule-driven policies, widened timing and count
    /// bounds for the utilization-feedback policies (see
    /// [`Tolerances::counts_are_protocol`]). Widening is monotone — a
    /// field the caller already loosened is never re-tightened.
    #[must_use]
    pub fn for_policy(&self, policy: RefreshPolicyKind) -> Tolerances {
        if Self::counts_are_protocol(policy) {
            return *self;
        }
        let widen = |t: MetricTol, rel: f64, abs: f64| MetricTol {
            rel: t.rel.max(rel),
            abs: t.abs.max(abs),
        };
        Tolerances {
            hmean_ipc: widen(self.hmean_ipc, 0.20, 0.0),
            read_latency: widen(self.read_latency, 0.40, 0.0),
            reads_completed: widen(self.reads_completed, 0.20, 0.0),
            refreshes_total: widen(self.refreshes_total, 0.60, 8.0),
            ..*self
        }
    }
}

/// One cross-checked metric with both backends' values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricDelta {
    /// Metric name (stable identifier, e.g. `hmean_ipc`).
    pub metric: &'static str,
    /// Value measured on the primary backend.
    pub primary: f64,
    /// Value measured on the shadow backend.
    pub shadow: f64,
    /// Tolerance the comparison ran under.
    pub tol: MetricTol,
    /// Whether this metric participates in protocol classification
    /// (exact counters) rather than timing-approximation slack.
    pub protocol: bool,
    /// Whether the disagreement exceeded the tolerance.
    pub exceeded: bool,
}

impl fmt::Display for MetricDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: primary={:.6} shadow={:.6} (rel {:.3}, abs {:.3}){}",
            self.metric,
            self.primary,
            self.shadow,
            self.tol.rel,
            self.tol.abs,
            if self.exceeded { " EXCEEDED" } else { "" }
        )
    }
}

/// What kind of disagreement the validator found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceClass {
    /// Only approximate timing metrics drifted past tolerance; every
    /// exact protocol counter agreed.
    ToleranceExceeded,
    /// An exact protocol counter disagreed — one model is wrong.
    ProtocolDivergent,
}

impl fmt::Display for DivergenceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceClass::ToleranceExceeded => write!(f, "tolerance-exceeded"),
            DivergenceClass::ProtocolDivergent => write!(f, "protocol-divergent"),
        }
    }
}

/// Exact protocol counters folded across every channel at one span
/// boundary. Two correct implementations of the same refresh schedule
/// must produce identical digests at every boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolDigest {
    /// All-bank refreshes issued.
    pub refreshes_ab: u64,
    /// Per-bank refreshes issued.
    pub refreshes_pb: u64,
    /// Rows refreshed, summed over every bank.
    pub rows_refreshed: u64,
    /// Retention-deadline violations observed by the integrity oracle.
    pub retention_violations: u64,
    /// Reads completed (store-forwarded reads included).
    pub reads_completed: u64,
}

impl ProtocolDigest {
    /// Folds the digest of every channel of `sys` at its current clock.
    #[must_use]
    pub fn of(sys: &System) -> Self {
        let mut d = ProtocolDigest::default();
        for mc in sys.backends() {
            let s = mc.stats();
            d.refreshes_ab += s.refreshes_ab;
            d.refreshes_pb += s.refreshes_pb;
            d.retention_violations += s.retention_violations;
            d.reads_completed += s.reads_completed;
            for (_, _, rows, _) in mc.bank_report() {
                d.rows_refreshed += rows;
            }
        }
        d
    }
}

impl fmt::Display for ProtocolDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ab={} pb={} rows={} viol={} reads={}",
            self.refreshes_ab,
            self.refreshes_pb,
            self.rows_refreshed,
            self.retention_violations,
            self.reads_completed
        )
    }
}

/// The first span boundary where the two backends' protocol digests
/// disagreed, produced by the triage pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantumAttribution {
    /// Index of the first divergent boundary (the auditor's "quantum").
    pub quantum: u64,
    /// Simulation clock at that boundary.
    pub at: Ps,
    /// Primary backend's digest there.
    pub primary: ProtocolDigest,
    /// Shadow backend's digest there.
    pub shadow: ProtocolDigest,
}

impl fmt::Display for QuantumAttribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergent quantum {} (t={}): primary[{}] shadow[{}]",
            self.quantum, self.at, self.primary, self.shadow
        )
    }
}

/// Structured payload of [`RefsimError::BackendDivergence`].
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// Refresh policy of the diverging cell.
    pub policy: RefreshPolicyKind,
    /// Disagreement class.
    pub class: DivergenceClass,
    /// Every cross-checked metric (exceeded ones flagged).
    pub deltas: Vec<MetricDelta>,
    /// Whether two primary-backend runs of the cell were bit-identical.
    pub primary_deterministic: bool,
    /// Whether two shadow-backend runs of the cell were bit-identical.
    pub shadow_deterministic: bool,
    /// First divergent quantum, when the triage pass attributed one
    /// (protocol divergences only; `None` means the end-of-run counters
    /// disagreed but every sampled boundary matched, or triage itself
    /// failed).
    pub attribution: Option<QuantumAttribution>,
}

impl DivergenceReport {
    /// The metrics that exceeded their tolerance.
    pub fn exceeded(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.exceeded)
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] policy {:?}:", self.class, self.policy)?;
        for d in self.exceeded() {
            write!(f, " {{{d}}}")?;
        }
        if !self.primary_deterministic {
            write!(f, " primary NONDETERMINISTIC")?;
        }
        if !self.shadow_deterministic {
            write!(f, " shadow NONDETERMINISTIC")?;
        }
        match &self.attribution {
            Some(a) => write!(f, " {a}"),
            None => write!(f, " (no quantum attributed)"),
        }
    }
}

/// A clean cross-validation outcome: both runs' metrics and the full
/// delta table (nothing exceeded).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffvalOutcome {
    /// Metrics from the primary backend.
    pub primary: RunMetrics,
    /// Metrics from the shadow backend.
    pub shadow: RunMetrics,
    /// Every cross-checked metric.
    pub deltas: Vec<MetricDelta>,
}

/// The config every diffval run (and triage replay) executes under:
/// the caller's config with the retention-integrity oracle armed. The
/// oracle is the one protocol check that stays exact under the
/// feedback policies, so every cross-validated run carries it.
/// NoRefresh is exempt — with no refreshes at all the oracle would
/// (correctly) flag every row on both backends alike.
fn instrumented(cfg: &SystemConfig) -> SystemConfig {
    if matches!(cfg.refresh_policy, RefreshPolicyKind::NoRefresh) {
        cfg.clone()
    } else {
        cfg.clone().with_retention_tracking()
    }
}

fn run_on(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    kind: BackendKind,
) -> Result<RunMetrics, RefsimError> {
    let mut sys = System::try_new(instrumented(cfg).with_backend(kind), mix)?;
    sys.try_run()
}

fn compare(
    policy: RefreshPolicyKind,
    a: &RunMetrics,
    b: &RunMetrics,
    tol: &Tolerances,
) -> Vec<MetricDelta> {
    let tol = tol.for_policy(policy);
    let mut deltas = Vec::new();
    let mut push = |metric, primary: f64, shadow: f64, t: MetricTol, protocol| {
        deltas.push(MetricDelta {
            metric,
            primary,
            shadow,
            tol: t,
            protocol,
            exceeded: !t.accepts(primary, shadow),
        });
    };
    push(
        "hmean_ipc",
        a.hmean_ipc(),
        b.hmean_ipc(),
        tol.hmean_ipc,
        false,
    );
    push(
        "avg_read_latency_cycles",
        a.avg_read_latency_cycles(),
        b.avg_read_latency_cycles(),
        tol.read_latency,
        false,
    );
    push(
        "row_hit_rate",
        a.controller.row_hit_rate().unwrap_or(0.0),
        b.controller.row_hit_rate().unwrap_or(0.0),
        tol.row_hit_rate,
        false,
    );
    push(
        "bus_utilization",
        a.controller.bus_utilization(a.sim_time),
        b.controller.bus_utilization(b.sim_time),
        tol.bus_utilization,
        false,
    );
    push(
        "reads_completed",
        a.controller.reads_completed as f64,
        b.controller.reads_completed as f64,
        tol.reads_completed,
        false,
    );
    push(
        "refreshes_total",
        a.controller.refreshes_total() as f64,
        b.controller.refreshes_total() as f64,
        tol.refreshes_total,
        Tolerances::counts_are_protocol(policy),
    );
    push(
        "retention_violations",
        a.controller.retention_violations as f64,
        b.controller.retention_violations as f64,
        MetricTol { rel: 0.0, abs: 0.0 },
        true,
    );
    deltas
}

/// Steps a fresh system through `boundaries`, folding a
/// [`ProtocolDigest`] at each, mirroring the replay auditor's span
/// segmentation so both backends see identical step boundaries.
fn digest_trace(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    boundaries: &[Ps],
) -> Result<Vec<ProtocolDigest>, RefsimError> {
    let mut sys = System::try_new(cfg.clone(), mix)?;
    if cfg.warmup == Ps::ZERO {
        sys.begin_measure();
    }
    let mut digests = Vec::with_capacity(boundaries.len());
    for &b in boundaries {
        sys.try_run_until(b)?;
        if b == cfg.warmup {
            sys.begin_measure();
        }
        digests.push(ProtocolDigest::of(&sys));
    }
    Ok(digests)
}

/// Triages a divergence: self-verifies each backend with the replay
/// auditor, then walks both backends through the same span boundaries
/// and attributes the first quantum whose protocol digests differ.
fn triage(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
) -> Result<(bool, bool, Option<QuantumAttribution>), RefsimError> {
    let opts = ReplayOptions::for_config(cfg);
    let cfg_p = instrumented(cfg).with_backend(BackendKind::Primary);
    let cfg_s = instrumented(cfg).with_backend(BackendKind::Shadow);
    let det_p = replay_verify(&cfg_p, mix, &opts)?.is_clean();
    let det_s = replay_verify(&cfg_s, mix, &opts)?.is_clean();

    let boundaries = span_boundaries(cfg, Some(opts.sample_every));
    let dp = digest_trace(&cfg_p, mix, &boundaries)?;
    let ds = digest_trace(&cfg_s, mix, &boundaries)?;
    let attribution = dp
        .iter()
        .zip(&ds)
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(q, (a, b))| QuantumAttribution {
            quantum: q as u64,
            at: boundaries[q],
            primary: *a,
            shadow: *b,
        });
    Ok((det_p, det_s, attribution))
}

/// Runs `(cfg, mix)` on both memory backends and cross-checks the
/// results within `tol`.
///
/// The configured backend of `cfg` is ignored — both are always run.
/// On agreement the full delta table comes back as a
/// [`DiffvalOutcome`]; on disagreement the error is a classified,
/// triaged [`RefsimError::BackendDivergence`].
///
/// # Errors
///
/// Any simulation fault of either run, or the divergence itself.
pub fn cross_validate(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    tol: &Tolerances,
) -> Result<DiffvalOutcome, RefsimError> {
    let primary = run_on(cfg, mix, BackendKind::Primary)?;
    let shadow = run_on(cfg, mix, BackendKind::Shadow)?;
    let deltas = compare(cfg.refresh_policy, &primary, &shadow, tol);
    if deltas.iter().all(|d| !d.exceeded) {
        return Ok(DiffvalOutcome {
            primary,
            shadow,
            deltas,
        });
    }

    let class = if deltas.iter().any(|d| d.exceeded && d.protocol) {
        DivergenceClass::ProtocolDivergent
    } else {
        DivergenceClass::ToleranceExceeded
    };
    // Attribution only makes sense when the protocol itself diverged;
    // a pure timing drift has no "first wrong quantum".
    let (det_p, det_s, attribution) = if class == DivergenceClass::ProtocolDivergent {
        triage(cfg, mix)?
    } else {
        (true, true, None)
    };
    Err(RefsimError::BackendDivergence(Box::new(DivergenceReport {
        policy: cfg.refresh_policy,
        class,
        deltas,
        primary_deterministic: det_p,
        shadow_deterministic: det_s,
        attribution,
    })))
}

/// Runs the full cross-validation matrix — every policy in
/// [`POLICY_MATRIX`] on `base` — and returns one result per policy, in
/// matrix order.
pub fn cross_validate_matrix(
    base: &SystemConfig,
    mix: &WorkloadMix,
    tol: &Tolerances,
) -> Vec<(RefreshPolicyKind, Result<DiffvalOutcome, RefsimError>)> {
    POLICY_MATRIX
        .iter()
        .map(|&p| {
            let cfg = base.clone().with_refresh(p);
            (p, cross_validate(&cfg, mix, tol))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refsim_workloads::profiles::Benchmark;

    fn quick_cfg(seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::table1().with_time_scale(512).with_seed(seed);
        cfg.warmup = cfg.trefw() / 8;
        cfg.measure = cfg.trefw() / 2;
        cfg
    }

    fn quick_mix() -> WorkloadMix {
        WorkloadMix::from_groups(
            "diffval",
            &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
            "mixed",
        )
    }

    #[test]
    fn tolerance_accepts_and_rejects() {
        let t = MetricTol { rel: 0.1, abs: 0.5 };
        assert!(t.accepts(10.0, 10.9));
        assert!(t.accepts(0.1, 0.4));
        assert!(!t.accepts(10.0, 12.0));
        let exact = MetricTol { rel: 0.0, abs: 0.0 };
        assert!(exact.accepts(3.0, 3.0));
        assert!(!exact.accepts(3.0, 4.0));
    }

    #[test]
    fn feedback_policies_get_widened_non_protocol_counts() {
        let base = Tolerances::default();
        for p in [RefreshPolicyKind::Adaptive, RefreshPolicyKind::Elastic] {
            assert!(!Tolerances::counts_are_protocol(p));
            let t = base.for_policy(p);
            assert!(t.refreshes_total.rel >= 0.60, "{p:?}");
            assert!(t.read_latency.rel >= 0.40, "{p:?}");
            // Untouched fields keep their calibration.
            assert_eq!(t.row_hit_rate, base.row_hit_rate);
            assert_eq!(t.bus_utilization, base.bus_utilization);
        }
        for p in [
            RefreshPolicyKind::NoRefresh,
            RefreshPolicyKind::AllBank,
            RefreshPolicyKind::Fgr(FgrMode::X4),
        ] {
            assert!(Tolerances::counts_are_protocol(p));
            assert_eq!(base.for_policy(p), base, "{p:?}");
        }
        // Monotone: a caller who loosened a field keeps the loose bound.
        let mut loose = base;
        loose.read_latency.rel = 0.9;
        assert_eq!(
            loose
                .for_policy(RefreshPolicyKind::Elastic)
                .read_latency
                .rel,
            0.9
        );
    }

    #[test]
    fn backends_agree_on_the_default_policy() {
        let out = cross_validate(&quick_cfg(7), &quick_mix(), &Tolerances::default())
            .expect("backends must agree");
        assert_eq!(out.deltas.len(), 7);
        assert!(out.deltas.iter().all(|d| !d.exceeded));
        assert!(out.primary.controller.reads_completed > 0);
        assert!(out.shadow.controller.reads_completed > 0);
    }

    #[test]
    fn perturbed_shadow_is_caught_and_attributed() {
        let cfg = quick_cfg(11).with_shadow_drop_every(3);
        let err = cross_validate(&cfg, &quick_mix(), &Tolerances::default())
            .expect_err("a refresh-dropping shadow must diverge");
        let RefsimError::BackendDivergence(report) = err else {
            panic!("expected BackendDivergence, got {err}");
        };
        assert_eq!(report.class, DivergenceClass::ProtocolDivergent);
        assert!(report.primary_deterministic);
        assert!(report.shadow_deterministic);
        assert!(
            report.exceeded().any(|d| d.metric == "refreshes_total"),
            "the dropped refreshes must show up in the counter: {report}"
        );
        let a = report
            .attribution
            .expect("a count-exact divergence must attribute a quantum");
        // Refresh counters reset at the measurement boundary, but the
        // cumulative per-bank row counter carries the warmup deficit.
        assert!(
            a.primary.rows_refreshed > a.shadow.rows_refreshed
                || a.primary.refreshes_ab + a.primary.refreshes_pb
                    > a.shadow.refreshes_ab + a.shadow.refreshes_pb,
            "shadow drops refreshes: {a}"
        );
    }

    #[test]
    fn divergence_report_displays_the_essentials() {
        let report = DivergenceReport {
            policy: RefreshPolicyKind::AllBank,
            class: DivergenceClass::ProtocolDivergent,
            deltas: vec![MetricDelta {
                metric: "refreshes_total",
                primary: 100.0,
                shadow: 66.0,
                tol: MetricTol {
                    rel: 0.01,
                    abs: 2.0,
                },
                protocol: true,
                exceeded: true,
            }],
            primary_deterministic: true,
            shadow_deterministic: true,
            attribution: Some(QuantumAttribution {
                quantum: 4,
                at: Ps::from_us(100),
                primary: ProtocolDigest {
                    refreshes_ab: 100,
                    ..ProtocolDigest::default()
                },
                shadow: ProtocolDigest {
                    refreshes_ab: 66,
                    ..ProtocolDigest::default()
                },
            }),
        };
        let e = RefsimError::BackendDivergence(Box::new(report));
        let s = e.to_string();
        assert!(s.contains("protocol-divergent"), "{s}");
        assert!(s.contains("refreshes_total"), "{s}");
        assert!(s.contains("quantum 4"), "{s}");
    }
}

//! Typed simulation errors.
//!
//! Every failure a [`crate::system::System`] can hit — invalid
//! configuration, an empty workload, memory exhaustion, a memory-
//! substrate fault, or loss of forward progress — is represented here so
//! experiment sweeps can record the failure and keep going instead of
//! tearing down the whole harness. Diagnostic variants carry a
//! [`SystemSnapshot`] of the machine state at the instant of failure.

use std::fmt;

use refsim_dram::error::{ControllerSnapshot, DramError};
use refsim_dram::time::Ps;

/// A digest of system state at the instant of a failure: simulation
/// clock, scheduler counters (including the refresh-aware `η`
/// fallbacks), in-flight memory traffic, and the channel-0 controller's
/// own [`ControllerSnapshot`] (queue depths, refresh cursors).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSnapshot {
    /// Simulation clock when the snapshot was taken.
    pub clock: Ps,
    /// Scheduler `pick_next` invocations so far.
    pub picks: u64,
    /// Refresh-aware picks that fell back to plain fairness (`η`).
    pub eta_fallbacks: u64,
    /// Read fills currently in flight between cores and memory.
    pub inflight_fills: usize,
    /// Channel-0 memory-controller state.
    pub controller: ControllerSnapshot,
}

impl fmt::Display for SystemSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={} picks={} eta_fallbacks={} inflight={} mc: {}",
            self.clock, self.picks, self.eta_fallbacks, self.inflight_fills, self.controller
        )
    }
}

/// Any error a simulation run can produce.
///
/// Experiment builders treat these as data: a failed run becomes an
/// error row in the results table while the rest of the sweep completes
/// (see [`crate::experiment::run_many_checked`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RefsimError {
    /// The configuration failed [`crate::config::SystemConfig::validate`].
    InvalidConfig(String),
    /// The workload mix has no tasks.
    EmptyWorkload,
    /// The bank-aware allocator exhausted physical memory.
    OutOfMemory {
        /// Task whose demand fault could not be served.
        task: u32,
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// The memory substrate reported a fault (time regression or
    /// controller livelock).
    Dram(DramError),
    /// The top-level simulation loop exceeded its forward-progress
    /// budget — a livelock diagnostic rather than a silent hang.
    NoProgress {
        /// Simulation clock when the watchdog fired.
        at: Ps,
        /// Steps executed within the offending `run_until` span.
        steps: u64,
        /// Machine state at the failure.
        snapshot: Box<SystemSnapshot>,
    },
    /// The run was cooperatively cancelled through the supervisor hook
    /// (see [`crate::system::System::set_cancel_hook`]): the sweep
    /// executor's straggler escalation asked the step loop to abandon
    /// the attempt. Retryable — the attempt is requeued and re-run
    /// (from its checkpoint when one exists), so cancellation never
    /// changes a result, only when it is computed.
    Cancelled {
        /// Simulation clock when the hook was observed.
        at: Ps,
    },
    /// A simulation worker panicked; the payload message is preserved
    /// when it was a string.
    Panicked(String),
    /// A checkpoint image could not be written, read, or imported.
    Checkpoint(String),
    /// A persistence surface hit a classified filesystem failure (see
    /// [`crate::vfs::VfsError`]): which operation, on which path,
    /// failed how. Transient ([`crate::vfs::VfsErrorKind::Interrupted`])
    /// failures are retryable; ENOSPC and crash-point failures are not.
    Io(crate::vfs::VfsError),
    /// The runtime invariant sanitizer found at least one error-severity
    /// violation (see [`crate::sanitize`]). The run's numbers are not
    /// trustworthy, but the simulation itself did not crash.
    InvariantViolation(Box<crate::sanitize::ViolationReport>),
    /// The primary and shadow memory backends disagreed beyond the
    /// calibrated tolerances on the same workload (see
    /// [`crate::diffval`]). The report carries every checked metric with
    /// both values, the divergence class, and — when the triage pass
    /// could attribute it — the first divergent quantum.
    BackendDivergence(Box<crate::diffval::DivergenceReport>),
}

impl fmt::Display for RefsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefsimError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            RefsimError::EmptyWorkload => write!(f, "workload mix has no tasks"),
            RefsimError::OutOfMemory { task, vaddr } => {
                write!(f, "out of memory faulting {vaddr:#x} for task {task}")
            }
            RefsimError::Dram(e) => write!(f, "memory substrate fault: {e}"),
            RefsimError::NoProgress {
                at,
                steps,
                snapshot,
            } => write!(
                f,
                "no forward progress after {steps} steps at {at} [{snapshot}]"
            ),
            RefsimError::Cancelled { at } => {
                write!(f, "cancelled by the sweep supervisor at {at}")
            }
            RefsimError::Panicked(msg) => write!(f, "simulation panicked: {msg}"),
            RefsimError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
            RefsimError::Io(e) => write!(f, "filesystem i/o: {e}"),
            RefsimError::InvariantViolation(report) => {
                write!(f, "invariant violation: {report}")
            }
            RefsimError::BackendDivergence(report) => {
                write!(f, "backend divergence: {report}")
            }
        }
    }
}

impl std::error::Error for RefsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RefsimError::Dram(e) => Some(e),
            RefsimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for RefsimError {
    fn from(e: DramError) -> Self {
        RefsimError::Dram(e)
    }
}

impl From<crate::vfs::VfsError> for RefsimError {
    fn from(e: crate::vfs::VfsError) -> Self {
        RefsimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refsim_dram::refresh::RefreshPolicyKind;

    fn snap() -> SystemSnapshot {
        SystemSnapshot {
            clock: Ps::from_us(3),
            picks: 12,
            eta_fallbacks: 2,
            inflight_fills: 5,
            controller: ControllerSnapshot {
                cursor: Ps::from_us(3),
                read_q: 4,
                write_q: 1,
                draining: false,
                pending_refresh_due: None,
                next_refresh_due: Some(Ps::from_us(8)),
                policy: RefreshPolicyKind::AllBank,
                refreshes_issued: 7,
                retention_violations: 0,
            },
        }
    }

    #[test]
    fn display_carries_diagnostics() {
        let e = RefsimError::NoProgress {
            at: Ps::from_us(3),
            steps: 999,
            snapshot: Box::new(snap()),
        };
        let s = e.to_string();
        assert!(s.contains("999 steps"), "{s}");
        assert!(s.contains("eta_fallbacks=2"), "{s}");
        assert!(s.contains("rq=4"), "{s}");
    }

    #[test]
    fn dram_errors_convert_and_chain() {
        let inner = DramError::TimeRegression {
            cursor: Ps::from_us(2),
            target: Ps::from_us(1),
            snapshot: Box::new(snap().controller),
        };
        let e: RefsimError = inner.clone().into();
        assert_eq!(e, RefsimError::Dram(inner));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("time went backwards"));
    }

    #[test]
    fn simple_variants_format() {
        assert_eq!(
            RefsimError::EmptyWorkload.to_string(),
            "workload mix has no tasks"
        );
        let e = RefsimError::OutOfMemory {
            task: 3,
            vaddr: 0x1000,
        };
        assert!(e.to_string().contains("0x1000"));
        assert!(RefsimError::InvalidConfig("n_cores".into())
            .to_string()
            .contains("n_cores"));
    }
}

//! Hand-rolled, versioned binary codec for checkpoint images.
//!
//! The vendored `serde` stub cannot derive, so checkpoints use an
//! explicit little-endian wire format instead: every value implements
//! [`Snapshot`], writing itself into an [`Enc`] and reading itself back
//! from a [`Dec`]. The format is deliberately simple — fixed-width
//! little-endian integers, `u64` length prefixes for sequences, one tag
//! byte for options and enums — so that the encoding of a given value is
//! byte-deterministic: encoding the same state twice yields identical
//! bytes, which is what the replay auditor's per-component hashes (see
//! [`crate::replay`]) rely on.
//!
//! Versioning happens at the container level: [`crate::checkpoint`]
//! frames a payload with a magic number, a format version, a
//! configuration fingerprint and a checksum. The codec itself is
//! version-unaware.

use std::fmt;

use refsim_cpu::cache::{CacheStats, SavedCache, SavedLine};
use refsim_cpu::core::SavedExecContext;
use refsim_cpu::hierarchy::{HierStats, SavedHierarchy};
use refsim_dram::backend::SavedBackend;
use refsim_dram::bank::{BankPhase, SavedBank, SavedRank};
use refsim_dram::controller::{SavedController, SavedEntry, SavedPendingRefresh};
use refsim_dram::geometry::BankId;
use refsim_dram::integrity::{RetentionViolation, SavedBankTrack, SavedTracker, ViolationKind};
use refsim_dram::refresh::RefreshOp;
use refsim_dram::request::{Completion, ReqId};
use refsim_dram::shadow::{SavedShadow, SavedShadowBank, SavedShadowRank};
use refsim_dram::stats::ControllerStats;
use refsim_dram::time::Ps;
use refsim_os::bank_alloc::{BankAllocStats, SavedBankAlloc};
use refsim_os::buddy::SavedBuddy;
use refsim_os::cfs::SavedRunqueue;
use refsim_os::sched::{SavedScheduler, SchedStats};
use refsim_os::task::TaskId;
use refsim_os::vm::SavedAddressSpace;
use refsim_workloads::pattern::SavedPattern;
use refsim_workloads::profiles::SavedWorkload;

use crate::metrics::{RunMetrics, TaskMetrics};

/// Decode failure: the byte stream does not describe a valid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the value was complete.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// A tag or length field held an impossible value.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated stream: needed {need} bytes, had {have}")
            }
            CodecError::Invalid(why) => write!(f, "invalid encoding: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Byte-stream encoder (little-endian, append-only).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consumes the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no framing.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Byte-stream decoder over a borrowed buffer.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// A sequence length, bounds-checked against the remaining bytes so
    /// a corrupt length cannot trigger a huge allocation.
    fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n)
            .map_err(|_| CodecError::Invalid(format!("length {n} exceeds usize")))?;
        if min_elem_bytes > 0 && n > self.remaining() / min_elem_bytes {
            return Err(CodecError::Invalid(format!(
                "length {n} impossible with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Self-describing binary serialization for checkpointable state.
///
/// Implemented locally for primitives and for every component crate's
/// `Saved*` plain-data type, keeping all byte-format knowledge in this
/// one module.
pub trait Snapshot: Sized {
    /// Writes `self` to the stream.
    fn encode(&self, e: &mut Enc);
    /// Reads a value back from the stream.
    ///
    /// # Errors
    ///
    /// [`CodecError`] when the stream is truncated or holds an invalid
    /// tag/length.
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Snapshot>(v: &T) -> Vec<u8> {
    let mut e = Enc::new();
    v.encode(&mut e);
    e.into_bytes()
}

/// Decodes a value from `bytes`, requiring the buffer to be consumed
/// exactly.
///
/// # Errors
///
/// [`CodecError`] on truncation, invalid content, or trailing garbage.
pub fn from_bytes<T: Snapshot>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut d = Dec::new(bytes);
    let v = T::decode(&mut d)?;
    if d.remaining() != 0 {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after value",
            d.remaining()
        )));
    }
    Ok(v)
}

// ---- primitives -------------------------------------------------------

impl Snapshot for bool {
    fn encode(&self, e: &mut Enc) {
        e.put_u8(u8::from(*self));
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::Invalid(format!("bool tag {v}"))),
        }
    }
}

impl Snapshot for u8 {
    fn encode(&self, e: &mut Enc) {
        e.put_u8(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.get_u8()
    }
}

impl Snapshot for u32 {
    fn encode(&self, e: &mut Enc) {
        e.put_u32(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.get_u32()
    }
}

impl Snapshot for u64 {
    fn encode(&self, e: &mut Enc) {
        e.put_u64(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.get_u64()
    }
}

impl Snapshot for f64 {
    fn encode(&self, e: &mut Enc) {
        e.put_u64(self.to_bits());
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(d.get_u64()?))
    }
}

impl Snapshot for String {
    fn encode(&self, e: &mut Enc) {
        e.put_u64(self.len() as u64);
        e.put_bytes(self.as_bytes());
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let n = d.get_len(1)?;
        let bytes = d.get_bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Invalid(format!("non-UTF-8 string: {e}")))
    }
}

impl Snapshot for Ps {
    fn encode(&self, e: &mut Enc) {
        e.put_u64(self.as_ps());
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Ps(d.get_u64()?))
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, e: &mut Enc) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            v => Err(CodecError::Invalid(format!("option tag {v}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, e: &mut Enc) {
        e.put_u64(self.len() as u64);
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let n = d.get_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, e: &mut Enc) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn encode(&self, e: &mut Enc) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
}

impl<T: Snapshot + Copy + Default, const N: usize> Snapshot for [T; N] {
    fn encode(&self, e: &mut Enc) {
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut out = [T::default(); N];
        for v in &mut out {
            *v = T::decode(d)?;
        }
        Ok(out)
    }
}

// ---- workloads --------------------------------------------------------

impl Snapshot for SavedPattern {
    fn encode(&self, e: &mut Enc) {
        self.cursors.encode(e);
        self.next_stream.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedPattern {
            cursors: Snapshot::decode(d)?,
            next_stream: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedWorkload {
    fn encode(&self, e: &mut Enc) {
        self.rng_state.encode(e);
        self.cold.encode(e);
        self.hot_cursor.encode(e);
        e.put_u32(self.mem_credit);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedWorkload {
            rng_state: Snapshot::decode(d)?,
            cold: Snapshot::decode(d)?,
            hot_cursor: Snapshot::decode(d)?,
            mem_credit: d.get_u32()?,
        })
    }
}

// ---- cpu --------------------------------------------------------------

impl Snapshot for SavedExecContext {
    fn encode(&self, e: &mut Enc) {
        self.now.encode(e);
        self.issued.encode(e);
        self.outstanding.encode(e);
        self.dependent_block.encode(e);
        self.stall_time.encode(e);
        self.misses.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedExecContext {
            now: Snapshot::decode(d)?,
            issued: Snapshot::decode(d)?,
            outstanding: Snapshot::decode(d)?,
            dependent_block: Snapshot::decode(d)?,
            stall_time: Snapshot::decode(d)?,
            misses: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedLine {
    fn encode(&self, e: &mut Enc) {
        self.tag.encode(e);
        self.valid.encode(e);
        self.dirty.encode(e);
        self.stamp.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedLine {
            tag: Snapshot::decode(d)?,
            valid: Snapshot::decode(d)?,
            dirty: Snapshot::decode(d)?,
            stamp: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for CacheStats {
    fn encode(&self, e: &mut Enc) {
        self.hits.encode(e);
        self.misses.encode(e);
        self.writebacks.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(CacheStats {
            hits: Snapshot::decode(d)?,
            misses: Snapshot::decode(d)?,
            writebacks: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedCache {
    fn encode(&self, e: &mut Enc) {
        self.lines.encode(e);
        self.tick.encode(e);
        self.stats.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedCache {
            lines: Snapshot::decode(d)?,
            tick: Snapshot::decode(d)?,
            stats: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for HierStats {
    fn encode(&self, e: &mut Enc) {
        self.accesses.encode(e);
        self.llc_misses.encode(e);
        self.writebacks.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(HierStats {
            accesses: Snapshot::decode(d)?,
            llc_misses: Snapshot::decode(d)?,
            writebacks: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedHierarchy {
    fn encode(&self, e: &mut Enc) {
        self.l1.encode(e);
        self.l2.encode(e);
        self.stats.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedHierarchy {
            l1: Snapshot::decode(d)?,
            l2: Snapshot::decode(d)?,
            stats: Snapshot::decode(d)?,
        })
    }
}

// ---- os ---------------------------------------------------------------

impl Snapshot for TaskId {
    fn encode(&self, e: &mut Enc) {
        e.put_u32(self.0);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(TaskId(d.get_u32()?))
    }
}

impl Snapshot for SavedRunqueue {
    fn encode(&self, e: &mut Enc) {
        self.entries.encode(e);
        self.min_vruntime.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedRunqueue {
            entries: Snapshot::decode(d)?,
            min_vruntime: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SchedStats {
    fn encode(&self, e: &mut Enc) {
        self.picks.encode(e);
        self.refresh_dodges.encode(e);
        self.eta_fallbacks.encode(e);
        self.migrations.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SchedStats {
            picks: Snapshot::decode(d)?,
            refresh_dodges: Snapshot::decode(d)?,
            eta_fallbacks: Snapshot::decode(d)?,
            migrations: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedScheduler {
    fn encode(&self, e: &mut Enc) {
        self.queues.encode(e);
        self.stats.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedScheduler {
            queues: Snapshot::decode(d)?,
            stats: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedAddressSpace {
    fn encode(&self, e: &mut Enc) {
        self.pages.encode(e);
        self.faults.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedAddressSpace {
            pages: Snapshot::decode(d)?,
            faults: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedBuddy {
    fn encode(&self, e: &mut Enc) {
        self.frames.encode(e);
        self.free_frames.encode(e);
        self.free_lists.encode(e);
        e.put_u64(self.alloc_map.len() as u64);
        e.put_bytes(&self.alloc_map);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let frames = Snapshot::decode(d)?;
        let free_frames = Snapshot::decode(d)?;
        let free_lists = Snapshot::decode(d)?;
        let n = d.get_len(1)?;
        let alloc_map = d.get_bytes(n)?.to_vec();
        Ok(SavedBuddy {
            frames,
            free_frames,
            free_lists,
            alloc_map,
        })
    }
}

impl Snapshot for BankAllocStats {
    fn encode(&self, e: &mut Enc) {
        self.allocations.encode(e);
        self.cache_hits.encode(e);
        self.pulls.encode(e);
        self.fallbacks.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(BankAllocStats {
            allocations: Snapshot::decode(d)?,
            cache_hits: Snapshot::decode(d)?,
            pulls: Snapshot::decode(d)?,
            fallbacks: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedBankAlloc {
    fn encode(&self, e: &mut Enc) {
        self.buddy.encode(e);
        self.per_bank_free.encode(e);
        self.stats.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedBankAlloc {
            buddy: Snapshot::decode(d)?,
            per_bank_free: Snapshot::decode(d)?,
            stats: Snapshot::decode(d)?,
        })
    }
}

// ---- dram -------------------------------------------------------------

impl Snapshot for BankPhase {
    fn encode(&self, e: &mut Enc) {
        e.put_u8(match self {
            BankPhase::Idle => 0,
            BankPhase::Active => 1,
            BankPhase::Refreshing => 2,
        });
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.get_u8()? {
            0 => Ok(BankPhase::Idle),
            1 => Ok(BankPhase::Active),
            2 => Ok(BankPhase::Refreshing),
            v => Err(CodecError::Invalid(format!("bank phase tag {v}"))),
        }
    }
}

impl Snapshot for SavedBank {
    fn encode(&self, e: &mut Enc) {
        self.phase.encode(e);
        self.open_row.encode(e);
        self.next_act.encode(e);
        self.next_pre.encode(e);
        self.next_cas.encode(e);
        self.busy_until.encode(e);
        self.rows_refreshed.encode(e);
        self.refresh_busy_total.encode(e);
        self.activations.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedBank {
            phase: Snapshot::decode(d)?,
            open_row: Snapshot::decode(d)?,
            next_act: Snapshot::decode(d)?,
            next_pre: Snapshot::decode(d)?,
            next_cas: Snapshot::decode(d)?,
            busy_until: Snapshot::decode(d)?,
            rows_refreshed: Snapshot::decode(d)?,
            refresh_busy_total: Snapshot::decode(d)?,
            activations: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedRank {
    fn encode(&self, e: &mut Enc) {
        self.recent_acts.encode(e);
        self.act_count.encode(e);
        self.next_act_rank.encode(e);
        self.next_rd_rank.encode(e);
        self.refresh_until.encode(e);
        self.refresh_busy_total.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedRank {
            recent_acts: Snapshot::decode(d)?,
            act_count: Snapshot::decode(d)?,
            next_act_rank: Snapshot::decode(d)?,
            next_rd_rank: Snapshot::decode(d)?,
            refresh_until: Snapshot::decode(d)?,
            refresh_busy_total: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for ViolationKind {
    fn encode(&self, e: &mut Enc) {
        e.put_u8(match self {
            ViolationKind::LateRefresh => 0,
            ViolationKind::StaleAtEnd => 1,
            ViolationKind::WeakRow => 2,
        });
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.get_u8()? {
            0 => Ok(ViolationKind::LateRefresh),
            1 => Ok(ViolationKind::StaleAtEnd),
            2 => Ok(ViolationKind::WeakRow),
            v => Err(CodecError::Invalid(format!("violation kind tag {v}"))),
        }
    }
}

impl Snapshot for RetentionViolation {
    fn encode(&self, e: &mut Enc) {
        self.kind.encode(e);
        self.flat_bank.encode(e);
        self.row_start.encode(e);
        self.row_end.encode(e);
        self.interval.encode(e);
        self.limit.encode(e);
        self.at.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(RetentionViolation {
            kind: Snapshot::decode(d)?,
            flat_bank: Snapshot::decode(d)?,
            row_start: Snapshot::decode(d)?,
            row_end: Snapshot::decode(d)?,
            interval: Snapshot::decode(d)?,
            limit: Snapshot::decode(d)?,
            at: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedBankTrack {
    fn encode(&self, e: &mut Enc) {
        self.cursor.encode(e);
        self.spans.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedBankTrack {
            cursor: Snapshot::decode(d)?,
            spans: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedTracker {
    fn encode(&self, e: &mut Enc) {
        self.banks.encode(e);
        self.weak_last.encode(e);
        self.violations.encode(e);
        self.total.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedTracker {
            banks: Snapshot::decode(d)?,
            weak_last: Snapshot::decode(d)?,
            violations: Snapshot::decode(d)?,
            total: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for RefreshOp {
    fn encode(&self, e: &mut Enc) {
        match *self {
            RefreshOp::AllBank { rank, rows } => {
                e.put_u8(0);
                e.put_u8(rank);
                e.put_u32(rows);
            }
            RefreshOp::PerBank { bank, rows } => {
                e.put_u8(1);
                e.put_u8(bank.rank);
                e.put_u8(bank.bank);
                e.put_u32(rows);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.get_u8()? {
            0 => Ok(RefreshOp::AllBank {
                rank: d.get_u8()?,
                rows: d.get_u32()?,
            }),
            1 => {
                let rank = d.get_u8()?;
                let bank = d.get_u8()?;
                Ok(RefreshOp::PerBank {
                    bank: BankId::new(rank, bank),
                    rows: d.get_u32()?,
                })
            }
            v => Err(CodecError::Invalid(format!("refresh op tag {v}"))),
        }
    }
}

impl Snapshot for Completion {
    fn encode(&self, e: &mut Enc) {
        self.id.0.encode(e);
        self.at.encode(e);
        self.latency.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Completion {
            id: ReqId(Snapshot::decode(d)?),
            at: Snapshot::decode(d)?,
            latency: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for ControllerStats {
    fn encode(&self, e: &mut Enc) {
        self.reads_enqueued.encode(e);
        self.writes_enqueued.encode(e);
        self.reads_completed.encode(e);
        self.writes_completed.encode(e);
        self.forwarded_reads.encode(e);
        self.row_hits.encode(e);
        self.row_misses.encode(e);
        self.row_conflicts.encode(e);
        self.refreshes_ab.encode(e);
        self.refreshes_pb.encode(e);
        self.refresh_postpone_total.encode(e);
        self.refresh_postpone_max.encode(e);
        self.read_latency_total.encode(e);
        self.read_latency_max.encode(e);
        self.refresh_blocked_reads.encode(e);
        self.data_bus_busy.encode(e);
        self.queue_reject_reads.encode(e);
        self.queue_reject_writes.encode(e);
        self.write_drains.encode(e);
        self.retention_violations.encode(e);
        self.injected_skip_faults.encode(e);
        self.injected_delay_faults.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(ControllerStats {
            reads_enqueued: Snapshot::decode(d)?,
            writes_enqueued: Snapshot::decode(d)?,
            reads_completed: Snapshot::decode(d)?,
            writes_completed: Snapshot::decode(d)?,
            forwarded_reads: Snapshot::decode(d)?,
            row_hits: Snapshot::decode(d)?,
            row_misses: Snapshot::decode(d)?,
            row_conflicts: Snapshot::decode(d)?,
            refreshes_ab: Snapshot::decode(d)?,
            refreshes_pb: Snapshot::decode(d)?,
            refresh_postpone_total: Snapshot::decode(d)?,
            refresh_postpone_max: Snapshot::decode(d)?,
            read_latency_total: Snapshot::decode(d)?,
            read_latency_max: Snapshot::decode(d)?,
            refresh_blocked_reads: Snapshot::decode(d)?,
            data_bus_busy: Snapshot::decode(d)?,
            queue_reject_reads: Snapshot::decode(d)?,
            queue_reject_writes: Snapshot::decode(d)?,
            write_drains: Snapshot::decode(d)?,
            retention_violations: Snapshot::decode(d)?,
            injected_skip_faults: Snapshot::decode(d)?,
            injected_delay_faults: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedEntry {
    fn encode(&self, e: &mut Enc) {
        self.id.encode(e);
        self.write.encode(e);
        self.paddr.encode(e);
        self.arrival.encode(e);
        self.core.encode(e);
        self.task.encode(e);
        self.needed_act.encode(e);
        self.needed_pre.encode(e);
        self.refresh_blocked.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedEntry {
            id: Snapshot::decode(d)?,
            write: Snapshot::decode(d)?,
            paddr: Snapshot::decode(d)?,
            arrival: Snapshot::decode(d)?,
            core: Snapshot::decode(d)?,
            task: Snapshot::decode(d)?,
            needed_act: Snapshot::decode(d)?,
            needed_pre: Snapshot::decode(d)?,
            refresh_blocked: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedPendingRefresh {
    fn encode(&self, e: &mut Enc) {
        self.op.encode(e);
        self.due.encode(e);
        self.injected_delay.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedPendingRefresh {
            op: Snapshot::decode(d)?,
            due: Snapshot::decode(d)?,
            injected_delay: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedController {
    fn encode(&self, e: &mut Enc) {
        self.banks.encode(e);
        self.ranks.encode(e);
        self.read_q.encode(e);
        self.write_q.encode(e);
        self.draining.encode(e);
        self.cursor.encode(e);
        self.cmd_bus_free.encode(e);
        self.data_bus_free.encode(e);
        self.data_bus_owner.encode(e);
        self.pending_refresh.encode(e);
        self.epoch_start.encode(e);
        self.epoch_bus_busy.encode(e);
        self.last_utilization.encode(e);
        self.completions.encode(e);
        self.stats.encode(e);
        self.integrity.encode(e);
        self.refresh_seq.encode(e);
        self.policy_words.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedController {
            banks: Snapshot::decode(d)?,
            ranks: Snapshot::decode(d)?,
            read_q: Snapshot::decode(d)?,
            write_q: Snapshot::decode(d)?,
            draining: Snapshot::decode(d)?,
            cursor: Snapshot::decode(d)?,
            cmd_bus_free: Snapshot::decode(d)?,
            data_bus_free: Snapshot::decode(d)?,
            data_bus_owner: Snapshot::decode(d)?,
            pending_refresh: Snapshot::decode(d)?,
            epoch_start: Snapshot::decode(d)?,
            epoch_bus_busy: Snapshot::decode(d)?,
            last_utilization: Snapshot::decode(d)?,
            completions: Snapshot::decode(d)?,
            stats: Snapshot::decode(d)?,
            integrity: Snapshot::decode(d)?,
            refresh_seq: Snapshot::decode(d)?,
            policy_words: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedShadowBank {
    fn encode(&self, e: &mut Enc) {
        self.open_row.encode(e);
        self.last_act.encode(e);
        self.ready_act.encode(e);
        self.ready_cas.encode(e);
        self.ready_pre.encode(e);
        self.refresh_until.encode(e);
        self.last_cmd.encode(e);
        self.rows_refreshed.encode(e);
        self.activations.encode(e);
        self.refresh_busy.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedShadowBank {
            open_row: Snapshot::decode(d)?,
            last_act: Snapshot::decode(d)?,
            ready_act: Snapshot::decode(d)?,
            ready_cas: Snapshot::decode(d)?,
            ready_pre: Snapshot::decode(d)?,
            refresh_until: Snapshot::decode(d)?,
            last_cmd: Snapshot::decode(d)?,
            rows_refreshed: Snapshot::decode(d)?,
            activations: Snapshot::decode(d)?,
            refresh_busy: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedShadowRank {
    fn encode(&self, e: &mut Enc) {
        for a in &self.acts {
            a.encode(e);
        }
        self.act_pos.encode(e);
        self.read_ready.encode(e);
        self.refresh_until.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut acts = [Ps::ZERO; 4];
        for a in &mut acts {
            *a = Snapshot::decode(d)?;
        }
        Ok(SavedShadowRank {
            acts,
            act_pos: Snapshot::decode(d)?,
            read_ready: Snapshot::decode(d)?,
            refresh_until: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedShadow {
    fn encode(&self, e: &mut Enc) {
        self.banks.encode(e);
        self.ranks.encode(e);
        self.read_q.encode(e);
        self.write_q.encode(e);
        self.draining.encode(e);
        self.cursor.encode(e);
        self.data_bus_free.encode(e);
        self.data_bus_owner.encode(e);
        self.pending_refresh.encode(e);
        self.epoch_start.encode(e);
        self.epoch_bus_busy.encode(e);
        self.last_utilization.encode(e);
        self.completions.encode(e);
        self.stats.encode(e);
        self.integrity.encode(e);
        self.refresh_seq.encode(e);
        self.policy_words.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedShadow {
            banks: Snapshot::decode(d)?,
            ranks: Snapshot::decode(d)?,
            read_q: Snapshot::decode(d)?,
            write_q: Snapshot::decode(d)?,
            draining: Snapshot::decode(d)?,
            cursor: Snapshot::decode(d)?,
            data_bus_free: Snapshot::decode(d)?,
            data_bus_owner: Snapshot::decode(d)?,
            pending_refresh: Snapshot::decode(d)?,
            epoch_start: Snapshot::decode(d)?,
            epoch_bus_busy: Snapshot::decode(d)?,
            last_utilization: Snapshot::decode(d)?,
            completions: Snapshot::decode(d)?,
            stats: Snapshot::decode(d)?,
            integrity: Snapshot::decode(d)?,
            refresh_seq: Snapshot::decode(d)?,
            policy_words: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedBackend {
    fn encode(&self, e: &mut Enc) {
        match self {
            SavedBackend::Primary(s) => {
                e.put_u8(0);
                s.encode(e);
            }
            SavedBackend::Shadow(s) => {
                e.put_u8(1);
                s.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.get_u8()? {
            0 => Ok(SavedBackend::Primary(Snapshot::decode(d)?)),
            1 => Ok(SavedBackend::Shadow(Snapshot::decode(d)?)),
            v => Err(CodecError::Invalid(format!("backend tag {v}"))),
        }
    }
}

// ---- core metrics (persisted by the resilient sweep runner) ----------

impl Snapshot for TaskMetrics {
    fn encode(&self, e: &mut Enc) {
        self.task.encode(e);
        self.label.encode(e);
        self.instructions.encode(e);
        self.cpu_time.encode(e);
        self.stall_time.encode(e);
        self.llc_misses.encode(e);
        self.faults.encode(e);
        self.spilled_pages.encode(e);
        self.schedules.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(TaskMetrics {
            task: Snapshot::decode(d)?,
            label: Snapshot::decode(d)?,
            instructions: Snapshot::decode(d)?,
            cpu_time: Snapshot::decode(d)?,
            stall_time: Snapshot::decode(d)?,
            llc_misses: Snapshot::decode(d)?,
            faults: Snapshot::decode(d)?,
            spilled_pages: Snapshot::decode(d)?,
            schedules: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for RunMetrics {
    fn encode(&self, e: &mut Enc) {
        self.tasks.encode(e);
        self.sim_time.encode(e);
        self.controller.encode(e);
        self.sched.encode(e);
        self.cpu_period.encode(e);
        self.dram_period.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(RunMetrics {
            tasks: Snapshot::decode(d)?,
            sim_time: Snapshot::decode(d)?,
            controller: Snapshot::decode(d)?,
            sched: Snapshot::decode(d)?,
            cpu_period: Snapshot::decode(d)?,
            dram_period: Snapshot::decode(d)?,
        })
    }
}

// ---- hashing ----------------------------------------------------------

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over byte streams — the state digest the
/// deterministic-replay auditor samples each quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the hash state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snapshot + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0xA5u8);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&1.5f64);
        roundtrip(&f64::NAN.to_bits()); // NaN via bits stays exact
        roundtrip(&String::from("refsim"));
        roundtrip(&Ps::from_ns(7_800));
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&(Ps::from_us(1), TaskId(3)));
        roundtrip(&[Ps::from_ns(1), Ps::from_ns(2), Ps::from_ns(3), Ps::ZERO]);
    }

    #[test]
    fn f64_bit_pattern_is_exact() {
        let v = 0.1f64 + 0.2f64;
        let back: f64 = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let bytes = to_bytes(&0xDEAD_BEEF_CAFEu64);
        let r: Result<u64, _> = from_bytes(&bytes[..5]);
        assert!(matches!(r, Err(CodecError::Truncated { .. })), "{r:?}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut bytes = to_bytes(&1u64);
        bytes.push(0);
        let r: Result<u64, _> = from_bytes(&bytes);
        assert!(matches!(r, Err(CodecError::Invalid(_))), "{r:?}");
    }

    #[test]
    fn corrupt_length_cannot_allocate_absurdly() {
        // A Vec<u64> claiming 2^60 elements with 8 bytes of payload.
        let mut e = Enc::new();
        e.put_u64(1 << 60);
        e.put_u64(7);
        let r: Result<Vec<u64>, _> = from_bytes(&e.into_bytes());
        assert!(matches!(r, Err(CodecError::Invalid(_))), "{r:?}");
    }

    #[test]
    fn bad_tags_are_errors() {
        let r: Result<bool, _> = from_bytes(&[7]);
        assert!(r.is_err());
        let r: Result<Option<u8>, _> = from_bytes(&[2, 0]);
        assert!(r.is_err());
        let r: Result<BankPhase, _> = from_bytes(&[9]);
        assert!(r.is_err());
    }

    #[test]
    fn saved_component_types_roundtrip() {
        roundtrip(&SavedPattern {
            cursors: vec![1, 2, 3],
            next_stream: 1,
        });
        roundtrip(&SavedExecContext {
            now: Ps::from_us(3),
            issued: 100,
            outstanding: vec![(7, 42, true), (8, 50, false)],
            dependent_block: Some(7),
            stall_time: Ps::from_ns(500),
            misses: 2,
        });
        roundtrip(&SavedBank {
            phase: BankPhase::Active,
            open_row: Some(17),
            next_act: Ps::from_ns(10),
            next_pre: Ps::from_ns(20),
            next_cas: Ps::from_ns(30),
            busy_until: Ps::ZERO,
            rows_refreshed: 64,
            refresh_busy_total: Ps::from_ns(890),
            activations: 5,
        });
        roundtrip(&RefreshOp::PerBank {
            bank: BankId::new(1, 3),
            rows: 64,
        });
        roundtrip(&RefreshOp::AllBank { rank: 0, rows: 32 });
        roundtrip(&ControllerStats {
            reads_completed: 10,
            read_latency_total: Ps::from_us(5),
            ..Default::default()
        });
    }

    #[test]
    fn encoding_is_byte_deterministic() {
        let v = SavedTracker {
            banks: vec![SavedBankTrack {
                cursor: 3,
                spans: vec![(0, 128, Ps::from_us(2))],
            }],
            weak_last: vec![Ps::from_us(1)],
            violations: vec![],
            total: 0,
        };
        assert_eq!(to_bytes(&v), to_bytes(&v));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv64(b"foobar"));
    }
}

//! Deterministic-replay divergence auditing.
//!
//! The simulator is fully deterministic: the same `(config, mix)` pair
//! driven through the same `run_until` boundaries must reproduce every
//! bit of machine state. This module turns that property into a
//! checkable contract. A *trace* runs a configuration while sampling an
//! FNV-1a hash of each architectural component (DRAM controllers, CPU
//! cores, OS, workload generators, top-level system glue) at fixed,
//! slice-aligned span boundaries; comparing two traces pinpoints the
//! first divergent quantum *and* the component whose state differed —
//! the difference between "the run broke somewhere" and "the scheduler
//! state diverged at quantum 17".
//!
//! Three verification modes:
//!
//! * [`replay_verify`] — run the config twice, expect zero divergence;
//! * [`replay_verify_resumed`] — run once uninterrupted, once through a
//!   serialized mid-run checkpoint, expect zero divergence (exercises
//!   the whole checkpoint codec path);
//! * [`replay_verify_perturbed`] — deliberately corrupt one component at
//!   a chosen quantum and check the auditor attributes it correctly.

use std::fmt;

use refsim_dram::time::Ps;
use refsim_workloads::mix::WorkloadMix;

use crate::checkpoint::{Checkpoint, SavedSystem};
use crate::codec::{fnv64, to_bytes, Enc, Snapshot};
use crate::config::{EngineKind, SystemConfig};
use crate::error::RefsimError;
use crate::system::System;

/// Component-level FNV-1a hashes of a [`SavedSystem`], used to attribute
/// a divergence to the subsystem that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateHashes {
    /// Memory controllers: banks, queues, refresh policy, trackers.
    pub dram: u64,
    /// Cores: cache hierarchies, quantum state, MSHR lines.
    pub cpu: u64,
    /// OS: task table, scheduler runqueues, bank-aware allocator.
    pub os: u64,
    /// Workload generators and execution contexts.
    pub workloads: u64,
    /// Top-level glue: clock, request ids, in-flight fills, baselines.
    pub system: u64,
}

impl StateHashes {
    /// Hashes each component section of `s` independently.
    pub fn of(s: &SavedSystem) -> Self {
        let os = {
            let mut e = Enc::new();
            s.tasks.encode(&mut e);
            s.sched.encode(&mut e);
            s.alloc.encode(&mut e);
            fnv64(&e.into_bytes())
        };
        let system = {
            let mut e = Enc::new();
            s.clock.encode(&mut e);
            s.next_req.encode(&mut e);
            s.measure_start.encode(&mut e);
            s.inflight.encode(&mut e);
            s.base.encode(&mut e);
            s.sched_base_stats.encode(&mut e);
            fnv64(&e.into_bytes())
        };
        StateHashes {
            dram: fnv64(&to_bytes(&s.mcs)),
            cpu: fnv64(&to_bytes(&s.cores)),
            os,
            workloads: fnv64(&to_bytes(&s.sims)),
            system,
        }
    }

    /// A single hash folding all five components.
    pub fn combined(&self) -> u64 {
        let mut e = Enc::new();
        for w in [self.dram, self.cpu, self.os, self.workloads, self.system] {
            e.put_u64(w);
        }
        fnv64(&e.into_bytes())
    }

    /// The first component whose hash differs from `other`'s, with both
    /// hash values, or `None` if all match.
    pub fn first_diff(&self, other: &Self) -> Option<(&'static str, u64, u64)> {
        [
            ("dram", self.dram, other.dram),
            ("cpu", self.cpu, other.cpu),
            ("os", self.os, other.os),
            ("workloads", self.workloads, other.workloads),
            ("system", self.system, other.system),
        ]
        .into_iter()
        .find(|&(_, a, b)| a != b)
    }
}

/// One incremental sample of a replay trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySample {
    /// Index of the span boundary (the auditor's "quantum").
    pub quantum: u64,
    /// Simulation clock at the sample.
    pub at: Ps,
    /// Component hashes at the sample.
    pub hashes: StateHashes,
}

/// The first point where two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Quantum index of the first disagreement.
    pub quantum: u64,
    /// Simulation clock of that sample (from the reference trace).
    pub at: Ps,
    /// Component responsible (`dram`, `cpu`, `os`, `workloads`,
    /// `system`), or `sample-count` when one trace is shorter.
    pub component: String,
    /// Reference trace's hash of that component.
    pub a: u64,
    /// Compared trace's hash of that component.
    pub b: u64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at quantum {} (t={}): component `{}` \
             {:#018x} != {:#018x}",
            self.quantum, self.at, self.component, self.a, self.b
        )
    }
}

/// Result of a replay-verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Samples compared.
    pub samples: usize,
    /// First divergence, if any.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Whether the two executions were bit-identical at every sample.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.divergence {
            None => write!(f, "replay clean: {} samples bit-identical", self.samples),
            Some(d) => write!(f, "replay DIVERGED after {} samples: {d}", self.samples),
        }
    }
}

/// Replay sampling options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Interval between state samples. Keep it a multiple of the
    /// config's effective timeslice so samples land on quantum
    /// boundaries.
    pub sample_every: Ps,
}

impl ReplayOptions {
    /// Samples every four scheduling quanta of `cfg`.
    pub fn for_config(cfg: &SystemConfig) -> Self {
        ReplayOptions {
            sample_every: cfg.effective_timeslice() * 4,
        }
    }
}

/// The absolute span boundaries a driver must use so that two runs of
/// the same config — or an uninterrupted run and a checkpoint-resumed
/// one — are steered through identical step segmentation. Includes the
/// warm-up boundary and the end of the measured window; `every = None`
/// yields exactly the segmentation of [`System::try_run`].
pub fn span_boundaries(cfg: &SystemConfig, every: Option<Ps>) -> Vec<Ps> {
    let end = cfg.warmup + cfg.measure;
    let mut bs = Vec::new();
    if let Some(every) = every {
        if every > Ps::ZERO {
            let mut t = every;
            while t < end {
                bs.push(t);
                t += every;
            }
        }
    }
    bs.push(cfg.warmup);
    bs.push(end);
    bs.sort_unstable();
    bs.dedup();
    bs.retain(|&b| b > Ps::ZERO);
    bs
}

/// Advances `sys` to boundary `b`, handling the warm-up → measurement
/// transition exactly where [`System::try_run`] would.
fn advance(sys: &mut System, cfg: &SystemConfig, b: Ps) -> Result<(), RefsimError> {
    sys.try_run_until(b)?;
    if b == cfg.warmup {
        sys.begin_measure();
    }
    Ok(())
}

fn trace_with(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    opts: &ReplayOptions,
    mut hook: impl FnMut(&mut System, u64),
) -> Result<Vec<ReplaySample>, RefsimError> {
    let mut sys = System::try_new(cfg.clone(), mix)?;
    if cfg.warmup == Ps::ZERO {
        sys.begin_measure();
    }
    let mut samples = Vec::new();
    for (q, &b) in span_boundaries(cfg, Some(opts.sample_every))
        .iter()
        .enumerate()
    {
        advance(&mut sys, cfg, b)?;
        hook(&mut sys, q as u64);
        samples.push(ReplaySample {
            quantum: q as u64,
            at: sys.now(),
            hashes: StateHashes::of(&sys.export_state()),
        });
    }
    Ok(samples)
}

/// Runs `(cfg, mix)` once, sampling component hashes at each boundary.
///
/// # Errors
///
/// Any simulation fault of the underlying run.
pub fn trace(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    opts: &ReplayOptions,
) -> Result<Vec<ReplaySample>, RefsimError> {
    trace_with(cfg, mix, opts, |_, _| {})
}

/// Compares two traces sample-by-sample and reports the first
/// disagreement (quantum + component), or `None` if they are identical.
pub fn first_divergence(a: &[ReplaySample], b: &[ReplaySample]) -> Option<Divergence> {
    for (sa, sb) in a.iter().zip(b) {
        if sa.at != sb.at {
            return Some(Divergence {
                quantum: sa.quantum,
                at: sa.at,
                component: "system".to_owned(),
                a: sa.at.as_ps(),
                b: sb.at.as_ps(),
            });
        }
        if let Some((name, ha, hb)) = sa.hashes.first_diff(&sb.hashes) {
            return Some(Divergence {
                quantum: sa.quantum,
                at: sa.at,
                component: name.to_owned(),
                a: ha,
                b: hb,
            });
        }
    }
    if a.len() != b.len() {
        let q = a.len().min(b.len()) as u64;
        return Some(Divergence {
            quantum: q,
            at: a
                .get(q as usize)
                .or(b.get(q as usize))
                .map_or(Ps::ZERO, |s| s.at),
            component: "sample-count".to_owned(),
            a: a.len() as u64,
            b: b.len() as u64,
        });
    }
    None
}

/// Runs `(cfg, mix)` twice and verifies the executions are
/// bit-identical at every sampled quantum.
///
/// # Errors
///
/// Any simulation fault of either run. A divergence is *not* an error —
/// it is the report's payload.
pub fn replay_verify(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    opts: &ReplayOptions,
) -> Result<ReplayReport, RefsimError> {
    let a = trace(cfg, mix, opts)?;
    let b = trace(cfg, mix, opts)?;
    Ok(ReplayReport {
        samples: a.len().min(b.len()),
        divergence: first_divergence(&a, &b),
    })
}

/// Runs `(cfg, mix)` once per advancement engine — fixed-step and
/// event-skip — and verifies the two executions are bit-identical at
/// every sampled quantum. This is the differential harness that
/// licenses the event-horizon engine: any over-skip shows up as a hash
/// divergence attributed to the first diverging component.
///
/// # Errors
///
/// Any simulation fault of either run. A divergence is *not* an error —
/// it is the report's payload.
pub fn replay_verify_engines(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    opts: &ReplayOptions,
) -> Result<ReplayReport, RefsimError> {
    let fixed = trace(&cfg.clone().with_engine(EngineKind::FixedStep), mix, opts)?;
    let skip = trace(&cfg.clone().with_engine(EngineKind::EventSkip), mix, opts)?;
    Ok(ReplayReport {
        samples: fixed.len().min(skip.len()),
        divergence: first_divergence(&fixed, &skip),
    })
}

/// Like [`replay_verify`], but the second execution is interrupted at
/// the middle boundary, serialized through the checkpoint byte format,
/// restored into a freshly built system, and resumed — verifying the
/// full crash/resume path reproduces the uninterrupted run bit for bit.
///
/// # Errors
///
/// Any simulation fault, plus [`RefsimError::Checkpoint`] if the
/// serialized image fails to round-trip.
pub fn replay_verify_resumed(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    opts: &ReplayOptions,
) -> Result<ReplayReport, RefsimError> {
    let reference = trace(cfg, mix, opts)?;
    let bs = span_boundaries(cfg, Some(opts.sample_every));
    let mid = bs.len() / 2;

    // First leg: run to the middle boundary and serialize.
    let mut sys = System::try_new(cfg.clone(), mix)?;
    if cfg.warmup == Ps::ZERO {
        sys.begin_measure();
    }
    for &b in &bs[..mid] {
        advance(&mut sys, cfg, b)?;
    }
    let image = sys.checkpoint(mix).to_bytes();
    drop(sys);

    // Second leg: restore from bytes and resume through the remaining
    // boundaries, sampling as the reference did.
    let cp = Checkpoint::from_bytes(&image).map_err(|e| RefsimError::Checkpoint(e.to_string()))?;
    let mut sys = System::restore(cfg.clone(), mix, &cp)?;
    let mut tail = Vec::new();
    for (q, &b) in bs.iter().enumerate().skip(mid) {
        advance(&mut sys, cfg, b)?;
        tail.push(ReplaySample {
            quantum: q as u64,
            at: sys.now(),
            hashes: StateHashes::of(&sys.export_state()),
        });
    }
    Ok(ReplayReport {
        samples: tail.len(),
        divergence: first_divergence(&reference[mid..], &tail),
    })
}

/// Negative control for the auditor: runs `(cfg, mix)` twice, corrupting
/// the second run's workload-generator state right after `at_quantum`,
/// and reports the resulting divergence. A healthy auditor attributes it
/// to the `workloads` component at exactly that quantum.
///
/// # Errors
///
/// Any simulation fault of either run.
///
/// # Panics
///
/// Panics if the perturbed state is rejected on reimport (cannot happen
/// for an RNG-state flip).
pub fn replay_verify_perturbed(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    opts: &ReplayOptions,
    at_quantum: u64,
) -> Result<ReplayReport, RefsimError> {
    let a = trace(cfg, mix, opts)?;
    let b = trace_with(cfg, mix, opts, |sys, q| {
        if q == at_quantum {
            let mut st = sys.export_state();
            if let Some(sim) = st.sims.first_mut() {
                sim.wl.rng_state ^= 1;
            }
            sys.import_state(&st)
                .expect("rng flip is always importable");
        }
    })?;
    Ok(ReplayReport {
        samples: a.len().min(b.len()),
        divergence: first_divergence(&a, &b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refsim_workloads::mix::WorkloadMix;
    use refsim_workloads::profiles::Benchmark;

    fn tiny_cfg(seed: u64) -> SystemConfig {
        let mut c = SystemConfig::table1().with_time_scale(512).with_seed(seed);
        c.warmup = c.trefw() / 8;
        c.measure = c.trefw() / 2;
        c
    }

    fn tiny_mix() -> WorkloadMix {
        WorkloadMix::from_groups(
            "tiny",
            &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
            "M + L",
        )
    }

    #[test]
    fn boundaries_are_sorted_unique_and_cover_the_run() {
        let cfg = tiny_cfg(1);
        let bs = span_boundaries(&cfg, Some(cfg.effective_timeslice() * 4));
        assert!(bs.windows(2).all(|w| w[0] < w[1]), "{bs:?}");
        assert!(bs.contains(&cfg.warmup));
        assert_eq!(*bs.last().unwrap(), cfg.warmup + cfg.measure);
        // try_run segmentation: exactly warm + end.
        let plain = span_boundaries(&cfg, None);
        assert_eq!(plain, vec![cfg.warmup, cfg.warmup + cfg.measure]);
    }

    #[test]
    fn replay_verify_is_clean_across_seeds() {
        for seed in [0x5EED, 0xFEED] {
            let cfg = tiny_cfg(seed);
            let opts = ReplayOptions::for_config(&cfg);
            let r = replay_verify(&cfg, &tiny_mix(), &opts).expect("run");
            assert!(r.is_clean(), "seed {seed:#x}: {r}");
            assert!(
                r.samples > 2,
                "must actually sample ({} samples)",
                r.samples
            );
        }
    }

    #[test]
    fn resumed_replay_is_clean() {
        let cfg = tiny_cfg(7).co_design();
        let opts = ReplayOptions::for_config(&cfg);
        let r = replay_verify_resumed(&cfg, &tiny_mix(), &opts).expect("run");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn resumed_replay_is_clean_on_the_shadow_backend() {
        // Exercises the shadow model's save/restore through the full
        // checkpoint codec path — a precondition for differential
        // triage, which assumes either backend can self-replay.
        let cfg = tiny_cfg(7).with_backend(refsim_dram::backend::BackendKind::Shadow);
        let opts = ReplayOptions::for_config(&cfg);
        let r = replay_verify_resumed(&cfg, &tiny_mix(), &opts).expect("run");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn perturbation_is_attributed_to_quantum_and_component() {
        let cfg = tiny_cfg(3);
        let opts = ReplayOptions::for_config(&cfg);
        let r = replay_verify_perturbed(&cfg, &tiny_mix(), &opts, 2).expect("run");
        let d = r.divergence.expect("perturbed run must diverge");
        assert_eq!(d.quantum, 2, "{d}");
        assert_eq!(d.component, "workloads", "{d}");
        assert!(d.to_string().contains("quantum 2"), "{d}");
    }

    #[test]
    fn different_seeds_do_diverge() {
        // Sanity check the auditor can see a real difference: traces of
        // different seeds disagree from the very first sample.
        let mix = tiny_mix();
        let a_cfg = tiny_cfg(1);
        let opts = ReplayOptions::for_config(&a_cfg);
        let a = trace(&a_cfg, &mix, &opts).expect("run");
        let b = trace(&tiny_cfg(2), &mix, &opts).expect("run");
        let d = first_divergence(&a, &b).expect("seeds must differ");
        assert_eq!(d.quantum, 0);
    }

    #[test]
    fn sample_count_mismatch_is_reported() {
        let cfg = tiny_cfg(1);
        let opts = ReplayOptions::for_config(&cfg);
        let a = trace(&cfg, &tiny_mix(), &opts).expect("run");
        let d = first_divergence(&a, &a[..a.len() - 1]).expect("shorter trace");
        assert_eq!(d.component, "sample-count");
    }
}

//! Supervised work-stealing job executor for sweep matrices.
//!
//! [`execute`] replaces static whole-run chunking for the deduplicated
//! job graph of [`crate::sweep::run_many_resilient`]: sweep cells vary
//! more than 2× in cost (see `BENCH_simwall.json`), so a static split
//! leaves healthy workers idle behind one unlucky chunk, and a single
//! wedged worker used to stall a figure run forever. Just as the
//! refresh-access parallelization literature hides per-bank refresh
//! stalls behind useful work instead of serializing on them, this
//! executor hides per-cell stragglers behind stealing and supervision.
//!
//! The moving pieces:
//!
//! * **Per-worker deques, LIFO-local / FIFO-steal.** Initial dispatch is
//!   cost-model-ordered — longest expected first, using cached
//!   `wall_nanos` from [`crate::runcache`] as the estimator, with the
//!   original submission order as the deterministic fallback when no
//!   estimate exists — and round-robined across workers. An owner pops
//!   its most expensive remaining item from the back; thieves steal the
//!   cheapest from the front, nibbling tail work without disturbing the
//!   victim's critical path.
//! * **A supervisor thread** watches every worker's running slot. Each
//!   dispatch gets a soft deadline (`deadline_factor` × its cost
//!   estimate, floor-clamped; when no estimate exists, an adaptive
//!   fallback derived from the median completed cell). Crossing the
//!   deadline first logs a structured warning; crossing
//!   `escalate_factor` beyond it triggers *cooperative cancellation*
//!   through the simulator's forward-progress watchdog hook
//!   ([`crate::system::System::set_cancel_hook`]), which returns the
//!   attempt as retryable [`crate::error::RefsimError::Cancelled`]. A
//!   cancelled item is requeued with a doubled deadline; after
//!   `max_cancel_requeues` cancellations it runs warn-only, so a
//!   genuinely slow healthy cell always completes.
//! * **Requeue-based backoff.** A retrying item never sleeps on a
//!   worker: the callback returns [`Verdict::Requeue`] with a backoff
//!   and the item parks in a time-ordered overflow queue until its
//!   `ready_at`, while the worker moves on to healthy work.
//! * **Panic and poison isolation.** Worker-level faults (a panic
//!   escaping the callback, an injected hang, a poisoned verdict) count
//!   *strikes* against the worker; at `max_worker_strikes` the worker is
//!   quarantined — its deque drains to the overflow queue for survivors
//!   — unless it is the last active worker, which must keep going. A
//!   crash-looping job class therefore degrades throughput instead of
//!   killing the sweep.
//!
//! **Determinism argument.** The executor decides only *where and when*
//! an item runs, never *what it computes*: each item's result lands in
//! its own pre-assigned output slot, the simulator is deterministic per
//! attempt, and a cancelled or faulted attempt re-runs from scratch (or
//! its checkpoint, which is bit-identical by the replay contract). So
//! results are bit-identical across any thread count and any fault
//! plan — pinned by the thread-matrix proptest in
//! `crates/core/tests/executor.rs`.
//!
//! **Limits.** Cancellation is cooperative: it reclaims any attempt
//! that keeps reaching the step-loop gate (including simulator-level
//! stragglers and the injected hangs of [`WorkerFaultPlan`], which
//! poll the flag). A thread wedged in a non-polling syscall cannot be
//! reclaimed under `std::thread::scope`; the quarantine ladder bounds
//! the damage to `max_worker_strikes` dispatches on that worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::codec::fnv64;

/// Environment variable overriding [`default_threads`].
pub const THREADS_ENV: &str = "REFSIM_THREADS";

/// The default worker-thread count every sweep surface shares: the
/// `REFSIM_THREADS` environment variable when set to a positive
/// integer, else the host's available parallelism, else 4.
pub fn default_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        })
}

/// Seeded worker-level chaos for soaking the executor: the plan injects
/// hanging, slow, and panicking *workers* (the job-class crash knob is
/// applied by the sweep layer, which owns job identity). Worker faults
/// never consume a job's retry budget — they model harness trouble, not
/// simulation trouble, and the item simply re-runs on a healthy worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFaultPlan {
    /// Seed for the transient-panic draws.
    pub seed: u64,
    /// The first `hung_workers` worker indices hang on their early
    /// claims: the claim spins on the cancellation flag (the same flag
    /// real attempts poll) until the supervisor escalates.
    pub hung_workers: usize,
    /// Claims each hung worker hangs on before behaving (models a
    /// worker that recovers, and bounds the injection so a sweep always
    /// terminates even when every worker is hung).
    pub hang_claims: u32,
    /// The next `slow_workers` indices sleep `slow_delay` per claim.
    pub slow_workers: usize,
    /// Per-claim delay for slow workers.
    pub slow_delay: Duration,
    /// Parts-per-million chance — drawn per `(seed, item, epoch)`, so a
    /// redispatch redraws — that a claim panics inside the executor
    /// before the callback runs (a transient worker crash).
    pub panic_ppm: u32,
    /// Every `crash_job_period`-th job index (0, p, 2p, …) is a
    /// crash-looping job *class*; 0 disables. Applied by the sweep
    /// layer via [`WorkerFaultPlan::crashes_job`], so the panic flows
    /// the normal retry/quarantine path and burns real attempt budget.
    pub crash_job_period: u32,
}

impl WorkerFaultPlan {
    /// A plan that injects nothing (useful as an edit base).
    pub fn quiet(seed: u64) -> Self {
        WorkerFaultPlan {
            seed,
            hung_workers: 0,
            hang_claims: 2,
            slow_workers: 0,
            slow_delay: Duration::ZERO,
            panic_ppm: 0,
            crash_job_period: 0,
        }
    }

    /// Whether job index `job` belongs to the crash-looping class.
    pub fn crashes_job(&self, job: usize) -> bool {
        self.crash_job_period != 0 && (job as u64).is_multiple_of(u64::from(self.crash_job_period))
    }

    fn hangs(&self, worker: usize, claims: u32) -> bool {
        worker < self.hung_workers && claims < self.hang_claims
    }

    fn slows(&self, worker: usize) -> bool {
        worker >= self.hung_workers && worker < self.hung_workers + self.slow_workers
    }

    fn panics(&self, item: usize, epoch: u32) -> bool {
        if self.panic_ppm == 0 {
            return false;
        }
        let mut bytes = [0u8; 20];
        bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&(item as u64).to_le_bytes());
        bytes[16..].copy_from_slice(&epoch.to_le_bytes());
        fnv64(&bytes) % 1_000_000 < u64::from(self.panic_ppm)
    }
}

/// Supervision and isolation policy for one [`execute`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorOptions {
    /// Soft deadline = `deadline_factor` × the item's cost estimate.
    pub deadline_factor: u32,
    /// Fallback deadline base for items with no estimate:
    /// `adaptive_factor` × the median completed cell wall so far.
    pub adaptive_factor: u32,
    /// Every soft deadline is clamped up to at least this, so cheap
    /// cells on a noisy host are not spuriously flagged.
    pub deadline_floor: Duration,
    /// Cooperative cancellation fires at `escalate_factor` × the soft
    /// deadline (the warning fires at 1×).
    pub escalate_factor: u32,
    /// Last-resort stall bound: with no estimate *and* no completions
    /// yet (nothing to derive a deadline from), a dispatch running this
    /// long is escalated anyway. Keeps a hang on the very first claim
    /// from stalling the sweep before the cost model can boot.
    pub stall_cap: Duration,
    /// Supervisor sampling period.
    pub supervisor_tick: Duration,
    /// Cancellations an item absorbs (deadline doubling each time)
    /// before it becomes uncancellable and runs warn-only.
    pub max_cancel_requeues: u32,
    /// Worker-level faults (escaped panics, injected hangs, poisoned
    /// verdicts) a worker absorbs before quarantine.
    pub max_worker_strikes: u32,
    /// Seeded worker chaos; `None` injects nothing.
    pub fault_plan: Option<WorkerFaultPlan>,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            deadline_factor: 8,
            adaptive_factor: 8,
            deadline_floor: Duration::from_millis(200),
            escalate_factor: 2,
            stall_cap: Duration::from_secs(30),
            supervisor_tick: Duration::from_millis(10),
            max_cancel_requeues: 3,
            max_worker_strikes: 3,
            fault_plan: None,
        }
    }
}

/// One schedulable item: an opaque id (the sweep maps it to a leader
/// cell) plus an optional cost estimate in wall-clock nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct ExecItem {
    /// Caller-meaningful identity, also the determinism anchor: results
    /// keyed by `id` are independent of scheduling.
    pub id: usize,
    /// Expected wall nanoseconds (cached `wall_nanos` from
    /// [`crate::runcache`]); `None` schedules ahead of every estimated
    /// item, in submission order.
    pub estimate_nanos: Option<u64>,
}

/// Context handed to the run callback for one dispatch.
#[derive(Debug)]
pub struct ExecCtx<'a> {
    /// Worker index executing this dispatch.
    pub worker: usize,
    /// Times this item has been dispatched before (any reason:
    /// requeues, cancellations, worker faults).
    pub epoch: u32,
    /// Cooperative-cancellation flag for this dispatch; install it via
    /// [`crate::system::System::set_cancel_hook`]. The supervisor sets
    /// it on deadline escalation.
    pub cancel: &'a Arc<AtomicBool>,
}

/// What one dispatch of the callback decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The item is finished (result or terminal error already recorded
    /// by the callback). `poisoned` marks a panic-class failure for the
    /// worker strike counter.
    Done {
        /// Count a strike against the executing worker.
        poisoned: bool,
    },
    /// Run the item again no sooner than `backoff` from now. The worker
    /// moves on immediately — backoff parks the item, not the thread.
    Requeue {
        /// Minimum delay before redispatch.
        backoff: Duration,
        /// Count a strike against the executing worker.
        poisoned: bool,
        /// This requeue answers a supervisor cancellation (doubles the
        /// item's deadline and counts toward `max_cancel_requeues`
        /// instead of the caller's retry budget).
        cancelled: bool,
    },
}

/// Scheduling telemetry for one [`execute`] run (or, merged, for every
/// sweep a figure pipeline drove). Diagnostic only — excluded from
/// results, checkpoints, and replay hashes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker threads spawned (summed across merged runs).
    pub workers: u64,
    /// Items submitted.
    pub items: u64,
    /// Dispatches served from the worker's own deque.
    pub local_pops: u64,
    /// Dispatches stolen from another worker's deque.
    pub steals: u64,
    /// Dispatches claimed from the requeue/overflow queue.
    pub overflow_claims: u64,
    /// Items requeued by callback verdict (retry backoff and
    /// cancellations).
    pub requeues: u64,
    /// The subset of requeues answering a supervisor cancellation.
    pub cancel_requeues: u64,
    /// Soft-deadline crossings (structured warning logged).
    pub deadline_warnings: u64,
    /// Escalations to cooperative cancellation.
    pub deadline_escalations: u64,
    /// Worker faults injected by the [`WorkerFaultPlan`] (hangs, slow
    /// claims, transient panics).
    pub injected_faults: u64,
    /// Panics that escaped the callback and were absorbed by the
    /// executor's own `catch_unwind` (each requeues the item and
    /// strikes the worker).
    pub worker_panics: u64,
    /// Worker strikes accumulated (panics, hangs, poisoned verdicts).
    pub worker_strikes: u64,
    /// Workers quarantined after `max_worker_strikes`.
    pub quarantined_workers: u64,
    /// Completed-dispatch wall-time histogram; bucket upper bounds are
    /// 1, 4, 16, 64, 256, 1024, 4096, 16384 ms, then open-ended.
    pub tail_ms: [u64; 9],
    /// Structured straggler log (deadline warnings/escalations,
    /// quarantines), capped at [`ExecutorStats::MAX_WARNINGS`] lines.
    pub warnings: Vec<String>,
}

impl ExecutorStats {
    /// Cap on retained [`ExecutorStats::warnings`] lines.
    pub const MAX_WARNINGS: usize = 64;

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &ExecutorStats) {
        // Counters sum across sweeps; `workers` is a width, not a count,
        // so the merged value is the widest sweep seen.
        self.workers = self.workers.max(other.workers);
        self.items += other.items;
        self.local_pops += other.local_pops;
        self.steals += other.steals;
        self.overflow_claims += other.overflow_claims;
        self.requeues += other.requeues;
        self.cancel_requeues += other.cancel_requeues;
        self.deadline_warnings += other.deadline_warnings;
        self.deadline_escalations += other.deadline_escalations;
        self.injected_faults += other.injected_faults;
        self.worker_panics += other.worker_panics;
        self.worker_strikes += other.worker_strikes;
        self.quarantined_workers += other.quarantined_workers;
        for (a, b) in self.tail_ms.iter_mut().zip(&other.tail_ms) {
            *a += b;
        }
        for w in &other.warnings {
            if self.warnings.len() >= Self::MAX_WARNINGS {
                break;
            }
            self.warnings.push(w.clone());
        }
    }

    /// One-line human summary; degradation classes appear only when
    /// nonzero, keeping the healthy-path line short.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "workers {} | items {} | {} local / {} stolen / {} overflow | requeues {} \
             ({} cancel) | deadlines {} warned / {} escalated",
            self.workers,
            self.items,
            self.local_pops,
            self.steals,
            self.overflow_claims,
            self.requeues,
            self.cancel_requeues,
            self.deadline_warnings,
            self.deadline_escalations,
        );
        if self.worker_panics > 0 || self.quarantined_workers > 0 || self.injected_faults > 0 {
            s.push_str(&format!(
                " | FAULTS: {} worker panics, {} strikes, {} quarantined, {} injected",
                self.worker_panics,
                self.worker_strikes,
                self.quarantined_workers,
                self.injected_faults
            ));
        }
        s
    }

    /// Hand-formatted JSON object (the workspace deliberately has no
    /// JSON dependency); `indent` prefixes every inner line so callers
    /// can splice it into a larger document.
    pub fn to_json(&self, indent: &str) -> String {
        let tail = self
            .tail_ms
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let warnings = self
            .warnings
            .iter()
            .map(|w| format!("\"{}\"", w.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n{i}  \"workers\": {},\n{i}  \"items\": {},\n{i}  \"local_pops\": {},\n\
             {i}  \"steals\": {},\n{i}  \"overflow_claims\": {},\n{i}  \"requeues\": {},\n\
             {i}  \"cancel_requeues\": {},\n{i}  \"deadline_warnings\": {},\n\
             {i}  \"deadline_escalations\": {},\n{i}  \"injected_faults\": {},\n\
             {i}  \"worker_panics\": {},\n{i}  \"worker_strikes\": {},\n\
             {i}  \"quarantined_workers\": {},\n{i}  \"tail_ms\": [{tail}],\n\
             {i}  \"warnings\": [{warnings}]\n{i}}}",
            self.workers,
            self.items,
            self.local_pops,
            self.steals,
            self.overflow_claims,
            self.requeues,
            self.cancel_requeues,
            self.deadline_warnings,
            self.deadline_escalations,
            self.injected_faults,
            self.worker_panics,
            self.worker_strikes,
            self.quarantined_workers,
            i = indent,
        )
    }
}

// ---- internals -----------------------------------------------------------

/// A dispatchable unit flowing through deques and the overflow queue.
#[derive(Debug, Clone, Copy)]
struct Task {
    id: usize,
    /// Total prior dispatches (drives transient-fault redraws and the
    /// runaway-requeue cap).
    epoch: u32,
    /// Supervisor cancellations absorbed so far (doubles the deadline).
    cancels: u32,
    estimate: Option<u64>,
}

/// The running-slot record the supervisor samples.
#[derive(Debug)]
struct Running {
    item: usize,
    started: Instant,
    estimate: Option<u64>,
    cancels: u32,
    uncancellable: bool,
    cancel: Arc<AtomicBool>,
    warned: bool,
    escalated: bool,
}

#[derive(Default)]
struct AtomicStats {
    local_pops: AtomicU64,
    steals: AtomicU64,
    overflow_claims: AtomicU64,
    requeues: AtomicU64,
    cancel_requeues: AtomicU64,
    deadline_warnings: AtomicU64,
    deadline_escalations: AtomicU64,
    injected_faults: AtomicU64,
    worker_panics: AtomicU64,
    worker_strikes: AtomicU64,
    quarantined_workers: AtomicU64,
    tail_ms: [AtomicU64; 9],
}

struct Shared {
    opts: ExecutorOptions,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Requeued items waiting out their backoff: `(ready_at, task)`.
    overflow: Mutex<Vec<(Instant, Task)>>,
    slots: Vec<Mutex<Option<Running>>>,
    /// Completed items (also the exit condition).
    done: AtomicUsize,
    total: usize,
    /// Workers neither exited nor quarantined — the "never quarantine
    /// the last worker" guard.
    active_workers: AtomicUsize,
    /// A worker hit the runaway-requeue cap and is propagating its
    /// panic; everyone else should wind down instead of waiting for
    /// items that will never finish.
    abort: AtomicBool,
    /// Parking lot for idle workers.
    idle: (Mutex<()>, Condvar),
    stats: AtomicStats,
    warnings: Mutex<Vec<String>>,
    /// Wall nanos of completed dispatches, for the adaptive deadline.
    completed_walls: Mutex<Vec<u64>>,
}

impl Shared {
    fn finished(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.total || self.abort.load(Ordering::Acquire)
    }

    fn warn(&self, line: String) {
        let mut w = self.warnings.lock().expect("poisoned");
        if w.len() < ExecutorStats::MAX_WARNINGS {
            w.push(line);
        }
    }

    fn requeue(&self, task: Task, backoff: Duration) {
        self.overflow
            .lock()
            .expect("poisoned")
            .push((Instant::now() + backoff, task));
        self.idle.1.notify_all();
    }
}

/// Dispatches worker-fault injections resolved at claim time.
enum ClaimFault {
    None,
    Hang,
    Slow(Duration),
    Panic,
}

fn claim_fault(shared: &Shared, worker: usize, claims: u32, task: &Task) -> ClaimFault {
    let Some(plan) = &shared.opts.fault_plan else {
        return ClaimFault::None;
    };
    if plan.hangs(worker, claims) {
        ClaimFault::Hang
    } else if plan.panics(task.id, task.epoch) {
        ClaimFault::Panic
    } else if plan.slows(worker) {
        ClaimFault::Slow(plan.slow_delay)
    } else {
        ClaimFault::None
    }
}

/// Runs `items` to completion across `threads` supervised work-stealing
/// workers. The callback is invoked once per dispatch with the item's
/// id and a per-dispatch [`ExecCtx`]; it owns result recording and
/// returns a [`Verdict`]. Returns when every item reports
/// [`Verdict::Done`].
///
/// # Panics
///
/// Re-raises a callback panic only after the same item has escaped
/// `catch_unwind` an implausible number of times (the runaway cap) —
/// the signature of a harness bug, not a flaky cell. Sweep callbacks
/// catch their own panics, so in practice this propagates nothing.
pub fn execute<F>(
    items: &[ExecItem],
    threads: usize,
    opts: &ExecutorOptions,
    run: F,
) -> ExecutorStats
where
    F: Fn(usize, &ExecCtx<'_>) -> Verdict + Sync,
{
    let total = items.len();
    let mut stats = ExecutorStats {
        items: total as u64,
        ..ExecutorStats::default()
    };
    if total == 0 {
        return stats;
    }
    let workers = threads.clamp(1, total);
    stats.workers = workers as u64;

    // Cost-model dispatch order: longest expected first; items with no
    // estimate lead in submission order (an unknown could be anything —
    // schedule it early so a surprise long cell starts early).
    let mut order: Vec<&ExecItem> = items.iter().collect();
    order.sort_by_key(|it| {
        (
            std::cmp::Reverse(it.estimate_nanos.unwrap_or(u64::MAX)),
            it.id,
        )
    });

    // Round-robin the ordered items across workers, then fill each
    // deque cheapest-at-front: the owner's LIFO pop takes its most
    // expensive remaining item, thieves' FIFO steals take the cheapest.
    let mut assignment: Vec<Vec<Task>> = (0..workers).map(|_| Vec::new()).collect();
    for (j, it) in order.iter().enumerate() {
        assignment[j % workers].push(Task {
            id: it.id,
            epoch: 0,
            cancels: 0,
            estimate: it.estimate_nanos,
        });
    }
    let shared = Shared {
        opts: opts.clone(),
        deques: assignment
            .into_iter()
            .map(|mut v| {
                v.reverse();
                Mutex::new(VecDeque::from(v))
            })
            .collect(),
        overflow: Mutex::new(Vec::new()),
        slots: (0..workers).map(|_| Mutex::new(None)).collect(),
        done: AtomicUsize::new(0),
        total,
        active_workers: AtomicUsize::new(workers),
        abort: AtomicBool::new(false),
        idle: (Mutex::new(()), Condvar::new()),
        stats: AtomicStats::default(),
        warnings: Mutex::new(Vec::new()),
        completed_walls: Mutex::new(Vec::new()),
    };

    std::thread::scope(|s| {
        s.spawn(|| supervise(&shared));
        for w in 0..workers {
            let shared = &shared;
            let run = &run;
            s.spawn(move || worker_loop(w, shared, run));
        }
    });

    let a = &shared.stats;
    stats.local_pops = a.local_pops.load(Ordering::Relaxed);
    stats.steals = a.steals.load(Ordering::Relaxed);
    stats.overflow_claims = a.overflow_claims.load(Ordering::Relaxed);
    stats.requeues = a.requeues.load(Ordering::Relaxed);
    stats.cancel_requeues = a.cancel_requeues.load(Ordering::Relaxed);
    stats.deadline_warnings = a.deadline_warnings.load(Ordering::Relaxed);
    stats.deadline_escalations = a.deadline_escalations.load(Ordering::Relaxed);
    stats.injected_faults = a.injected_faults.load(Ordering::Relaxed);
    stats.worker_panics = a.worker_panics.load(Ordering::Relaxed);
    stats.worker_strikes = a.worker_strikes.load(Ordering::Relaxed);
    stats.quarantined_workers = a.quarantined_workers.load(Ordering::Relaxed);
    for (dst, src) in stats.tail_ms.iter_mut().zip(&a.tail_ms) {
        *dst = src.load(Ordering::Relaxed);
    }
    stats.warnings = shared.warnings.into_inner().expect("poisoned");
    stats
}

/// An item that keeps escaping `catch_unwind` is a harness bug, not a
/// flaky cell; past this many dispatches its panic propagates.
const RUNAWAY_EPOCHS: u32 = 64;

/// What the guarded section of one dispatch produced.
enum DispatchOutcome {
    Verdict(Verdict),
    /// An injected hang was reclaimed by supervisor cancellation.
    HangReclaimed,
}

fn worker_loop<F>(w: usize, shared: &Shared, run: &F)
where
    F: Fn(usize, &ExecCtx<'_>) -> Verdict + Sync,
{
    let mut strikes = 0u32;
    let mut claims = 0u32;
    loop {
        if shared.finished() {
            break;
        }
        let Some(task) = next_task(w, shared) else {
            // Nothing claimable anywhere: park until new work is
            // requeued, the earliest overflow item ripens, or the tick
            // forces a re-scan (also the finished()-wakeup fallback).
            let wait = {
                let overflow = shared.overflow.lock().expect("poisoned");
                overflow
                    .iter()
                    .map(|(ready, _)| ready.saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(shared.opts.supervisor_tick)
                    .min(Duration::from_millis(50))
                    .max(Duration::from_micros(100))
            };
            let guard = shared.idle.0.lock().expect("poisoned");
            let _ = shared.idle.1.wait_timeout(guard, wait).expect("poisoned");
            continue;
        };

        claims += 1;
        let cancel = Arc::new(AtomicBool::new(false));
        let fault = claim_fault(shared, w, claims - 1, &task);
        *shared.slots[w].lock().expect("poisoned") = Some(Running {
            item: task.id,
            started: Instant::now(),
            estimate: task.estimate,
            cancels: task.cancels,
            uncancellable: task.cancels >= shared.opts.max_cancel_requeues,
            cancel: Arc::clone(&cancel),
            warned: false,
            escalated: false,
        });
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match fault {
                ClaimFault::None => {}
                ClaimFault::Hang => {
                    shared.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
                    // Models a wedged cell that still reaches the
                    // watchdog gate: spin on the same flag a real
                    // attempt polls, until the supervisor reclaims us.
                    while !cancel.load(Ordering::Relaxed) && !shared.finished() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return DispatchOutcome::HangReclaimed;
                }
                ClaimFault::Slow(d) => {
                    shared.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(d);
                }
                ClaimFault::Panic => {
                    shared.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
                    panic!(
                        "injected transient worker panic (worker {w}, item {})",
                        task.id
                    );
                }
            }
            let ctx = ExecCtx {
                worker: w,
                epoch: task.epoch,
                cancel: &cancel,
            };
            DispatchOutcome::Verdict(run(task.id, &ctx))
        }));
        *shared.slots[w].lock().expect("poisoned") = None;

        let struck;
        match outcome {
            Ok(DispatchOutcome::Verdict(Verdict::Done { poisoned })) => {
                let wall = t0.elapsed();
                record_completion(shared, wall);
                struck = poisoned;
                if shared.done.fetch_add(1, Ordering::AcqRel) + 1 >= shared.total {
                    shared.idle.1.notify_all();
                }
            }
            Ok(DispatchOutcome::Verdict(Verdict::Requeue {
                backoff,
                poisoned,
                cancelled,
            })) => {
                shared.stats.requeues.fetch_add(1, Ordering::Relaxed);
                struck = poisoned;
                let mut next = task;
                next.epoch += 1;
                if cancelled {
                    shared.stats.cancel_requeues.fetch_add(1, Ordering::Relaxed);
                    next.cancels += 1;
                }
                shared.requeue(next, backoff);
            }
            Ok(DispatchOutcome::HangReclaimed) => {
                struck = true;
                let mut next = task;
                next.epoch += 1;
                shared.requeue(next, Duration::ZERO);
            }
            Err(payload) => {
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                struck = true;
                if task.epoch >= RUNAWAY_EPOCHS {
                    shared.abort.store(true, Ordering::Release);
                    shared.idle.1.notify_all();
                    std::panic::resume_unwind(payload);
                }
                let mut next = task;
                next.epoch += 1;
                shared.requeue(next, Duration::ZERO);
            }
        }
        if struck {
            strikes += 1;
            shared.stats.worker_strikes.fetch_add(1, Ordering::Relaxed);
            if strikes >= shared.opts.max_worker_strikes
                && shared.active_workers.load(Ordering::Acquire) > 1
            {
                quarantine_worker(w, shared);
                break;
            }
        }
    }
}

/// Quarantines worker `w`: its deque drains to the overflow queue
/// (ready immediately) for the surviving workers, and the worker exits.
fn quarantine_worker(w: usize, shared: &Shared) {
    let drained: Vec<Task> = shared.deques[w]
        .lock()
        .expect("poisoned")
        .drain(..)
        .collect();
    let n = drained.len();
    {
        let mut overflow = shared.overflow.lock().expect("poisoned");
        let now = Instant::now();
        for t in drained {
            overflow.push((now, t));
        }
    }
    shared.active_workers.fetch_sub(1, Ordering::AcqRel);
    shared
        .stats
        .quarantined_workers
        .fetch_add(1, Ordering::Relaxed);
    shared.warn(format!(
        "worker {w}: quarantined after {} strikes; {n} queued item(s) drained to survivors",
        shared.opts.max_worker_strikes
    ));
    shared.idle.1.notify_all();
}

fn record_completion(shared: &Shared, wall: Duration) {
    let ms = wall.as_millis() as u64;
    let bucket = [1u64, 4, 16, 64, 256, 1024, 4096, 16384]
        .iter()
        .position(|&ub| ms <= ub)
        .unwrap_or(8);
    shared.stats.tail_ms[bucket].fetch_add(1, Ordering::Relaxed);
    shared
        .completed_walls
        .lock()
        .expect("poisoned")
        .push(wall.as_nanos() as u64);
}

/// Claim priority: own deque (LIFO — most expensive remaining), then
/// the overflow queue (earliest ready item), then a steal sweep (FIFO —
/// the victim's cheapest).
fn next_task(w: usize, shared: &Shared) -> Option<Task> {
    if let Some(t) = shared.deques[w].lock().expect("poisoned").pop_back() {
        shared.stats.local_pops.fetch_add(1, Ordering::Relaxed);
        return Some(t);
    }
    {
        let mut overflow = shared.overflow.lock().expect("poisoned");
        let now = Instant::now();
        let ready = overflow
            .iter()
            .enumerate()
            .filter(|(_, (ready_at, _))| *ready_at <= now)
            .min_by_key(|(_, (ready_at, t))| (*ready_at, t.id))
            .map(|(idx, _)| idx);
        if let Some(idx) = ready {
            let (_, t) = overflow.swap_remove(idx);
            shared.stats.overflow_claims.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
    }
    let n = shared.deques.len();
    for off in 1..n {
        let v = (w + off) % n;
        if let Some(t) = shared.deques[v].lock().expect("poisoned").pop_front() {
            shared.stats.steals.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
    }
    None
}

/// The supervisor: samples every running slot each tick, derives the
/// effective deadline (estimate-based, adaptive-median fallback, or the
/// last-resort stall cap), logs a structured warning at 1× and issues
/// cooperative cancellation at `escalate_factor`×.
fn supervise(shared: &Shared) {
    let opts = &shared.opts;
    loop {
        if shared.finished() {
            break;
        }
        std::thread::sleep(opts.supervisor_tick);
        let median = {
            let walls = shared.completed_walls.lock().expect("poisoned");
            if walls.is_empty() {
                None
            } else {
                let mut sorted = walls.clone();
                sorted.sort_unstable();
                Some(sorted[sorted.len() / 2])
            }
        };
        for (w, slot) in shared.slots.iter().enumerate() {
            let mut guard = slot.lock().expect("poisoned");
            let Some(r) = guard.as_mut() else { continue };
            let elapsed = r.started.elapsed();
            let base = r
                .estimate
                .map(|n| Duration::from_nanos(n).saturating_mul(opts.deadline_factor))
                .or_else(|| {
                    median.map(|m| Duration::from_nanos(m).saturating_mul(opts.adaptive_factor))
                })
                .map(|d| d.max(opts.deadline_floor));
            // A cancelled-and-requeued item earns a doubled deadline per
            // absorbed cancellation.
            let scale = 1u32 << r.cancels.min(16);
            let (warn_at, cancel_at) = match base {
                Some(b) => {
                    let eff = b.saturating_mul(scale);
                    (eff, eff.saturating_mul(opts.escalate_factor.max(1)))
                }
                // No cost model yet: only the last-resort stall cap.
                None => (opts.stall_cap, opts.stall_cap),
            };
            let (warn_at, cancel_at) = (warn_at.min(opts.stall_cap), cancel_at.min(opts.stall_cap));
            if !r.warned && elapsed >= warn_at {
                r.warned = true;
                shared
                    .stats
                    .deadline_warnings
                    .fetch_add(1, Ordering::Relaxed);
                shared.warn(format!(
                    "worker {w}: item {} exceeded its {warn_at:?} soft deadline ({} prior \
                     cancellation(s))",
                    r.item, r.cancels
                ));
            }
            if !r.escalated && !r.uncancellable && elapsed >= cancel_at {
                r.escalated = true;
                r.cancel.store(true, Ordering::Release);
                shared
                    .stats
                    .deadline_escalations
                    .fetch_add(1, Ordering::Relaxed);
                shared.warn(format!(
                    "worker {w}: item {} straggling past {cancel_at:?}; cooperative \
                     cancellation issued",
                    r.item
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ExecutorOptions {
        ExecutorOptions {
            deadline_floor: Duration::from_millis(40),
            stall_cap: Duration::from_millis(200),
            supervisor_tick: Duration::from_millis(2),
            ..ExecutorOptions::default()
        }
    }

    #[test]
    fn threads_env_overrides_detection() {
        // Serialized with itself only; nothing else in this binary
        // reads the variable.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var(THREADS_ENV, "not a number");
        assert!(default_threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn single_worker_dispatch_is_longest_estimate_first() {
        let items = [
            ExecItem {
                id: 0,
                estimate_nanos: Some(10),
            },
            ExecItem {
                id: 1,
                estimate_nanos: Some(30),
            },
            ExecItem {
                id: 2,
                estimate_nanos: None,
            },
            ExecItem {
                id: 3,
                estimate_nanos: Some(20),
            },
        ];
        let order = Mutex::new(Vec::new());
        let stats = execute(&items, 1, &quick_opts(), |id, _| {
            order.lock().expect("poisoned").push(id);
            Verdict::Done { poisoned: false }
        });
        // No-estimate items lead (in submission order), then descending
        // estimate.
        assert_eq!(*order.lock().expect("poisoned"), vec![2, 1, 3, 0]);
        assert_eq!(stats.items, 4);
        assert_eq!(stats.local_pops, 4);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn idle_workers_steal_from_the_loaded_deque() {
        // Worker 0 owns the one big item (plus half the small ones);
        // worker 1 drains its own small items and then must steal.
        let items: Vec<ExecItem> = (0..10)
            .map(|id| ExecItem {
                id,
                estimate_nanos: Some(if id == 0 { 1_000_000_000 } else { 1_000 }),
            })
            .collect();
        let stats = execute(&items, 2, &quick_opts(), |id, _| {
            std::thread::sleep(Duration::from_millis(if id == 0 { 60 } else { 1 }));
            Verdict::Done { poisoned: false }
        });
        assert_eq!(stats.tail_ms.iter().sum::<u64>(), 10, "all items complete");
        assert!(stats.steals >= 1, "expected steals, got {stats:?}");
    }

    #[test]
    fn requeue_backoff_parks_the_item_not_the_worker() {
        // One item retries with a long backoff; the healthy items fill
        // the wait. Were the worker sleeping the backoff inline (the old
        // sweep behavior), total wall would be ≥ backoff + total work.
        let items: Vec<ExecItem> = (0..5)
            .map(|id| ExecItem {
                id,
                estimate_nanos: None,
            })
            .collect();
        let t0 = Instant::now();
        let stats = execute(&items, 1, &quick_opts(), |id, ctx| {
            if id == 0 && ctx.epoch == 0 {
                return Verdict::Requeue {
                    backoff: Duration::from_millis(120),
                    poisoned: false,
                    cancelled: false,
                };
            }
            std::thread::sleep(Duration::from_millis(40));
            Verdict::Done { poisoned: false }
        });
        let wall = t0.elapsed();
        assert_eq!(stats.requeues, 1);
        assert_eq!(stats.overflow_claims, 1);
        // 5 × 40 ms of work alone covers the 120 ms backoff; inline
        // sleeping would push past 320 ms. Generous margin for CI noise.
        assert!(
            wall < Duration::from_millis(310),
            "requeue backoff appears to have blocked the worker: {wall:?}"
        );
    }

    #[test]
    fn striking_worker_is_quarantined_and_items_survive() {
        // Worker 0 panics on every claim; worker 1 is healthy but slow
        // enough that worker 0 keeps claiming until quarantined.
        let items: Vec<ExecItem> = (0..12)
            .map(|id| ExecItem {
                id,
                estimate_nanos: None,
            })
            .collect();
        let opts = ExecutorOptions {
            max_worker_strikes: 2,
            ..quick_opts()
        };
        let completed = Mutex::new(Vec::new());
        let stats = execute(&items, 2, &opts, |id, ctx| {
            if ctx.worker == 0 {
                panic!("poisoned worker");
            }
            std::thread::sleep(Duration::from_millis(3));
            completed.lock().expect("poisoned").push(id);
            Verdict::Done { poisoned: false }
        });
        let mut done = completed.into_inner().expect("poisoned");
        done.sort_unstable();
        assert_eq!(done, (0..12).collect::<Vec<_>>(), "no item may be lost");
        assert_eq!(stats.quarantined_workers, 1, "{stats:?}");
        assert!(stats.worker_panics >= 2, "{stats:?}");
    }

    #[test]
    fn straggler_is_warned_then_cancelled_then_completes() {
        let items: Vec<ExecItem> = (0..4)
            .map(|id| ExecItem {
                id,
                estimate_nanos: None,
            })
            .collect();
        let opts = ExecutorOptions {
            stall_cap: Duration::from_millis(80),
            supervisor_tick: Duration::from_millis(2),
            ..quick_opts()
        };
        let stats = execute(&items, 2, &opts, |id, ctx| {
            if id == 0 && ctx.epoch == 0 {
                // A cell that honors the watchdog hook but never ends on
                // its own — reclaimable only by cancellation.
                while !ctx.cancel.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return Verdict::Requeue {
                    backoff: Duration::ZERO,
                    poisoned: false,
                    cancelled: true,
                };
            }
            Verdict::Done { poisoned: false }
        });
        assert!(stats.deadline_warnings >= 1, "{stats:?}");
        assert_eq!(stats.deadline_escalations, 1, "{stats:?}");
        assert_eq!(stats.cancel_requeues, 1, "{stats:?}");
        assert_eq!(stats.tail_ms.iter().sum::<u64>(), 4);
        assert!(!stats.warnings.is_empty());
    }

    #[test]
    fn fault_plan_draws_are_deterministic_and_bounded() {
        let plan = WorkerFaultPlan {
            panic_ppm: 300_000,
            crash_job_period: 3,
            ..WorkerFaultPlan::quiet(0xFA17)
        };
        for item in 0..32 {
            for epoch in 0..4 {
                assert_eq!(plan.panics(item, epoch), plan.panics(item, epoch));
            }
        }
        assert!(plan.crashes_job(0));
        assert!(!plan.crashes_job(1));
        assert!(plan.crashes_job(6));
        assert!(!WorkerFaultPlan::quiet(1).crashes_job(0));
        // A transient draw must redraw per epoch: with 30% ppm, some
        // (item, epoch) pair differs from epoch 0 over 32 items.
        assert!((0..32).any(|i| plan.panics(i, 0) != plan.panics(i, 1)));
    }

    #[test]
    fn hung_worker_is_reclaimed_and_sweep_completes() {
        let items: Vec<ExecItem> = (0..8)
            .map(|id| ExecItem {
                id,
                estimate_nanos: None,
            })
            .collect();
        let opts = ExecutorOptions {
            stall_cap: Duration::from_millis(60),
            supervisor_tick: Duration::from_millis(2),
            max_worker_strikes: 2,
            fault_plan: Some(WorkerFaultPlan {
                hung_workers: 1,
                hang_claims: 2,
                ..WorkerFaultPlan::quiet(7)
            }),
            ..ExecutorOptions::default()
        };
        let stats = execute(&items, 3, &opts, |_, _| {
            std::thread::sleep(Duration::from_millis(2));
            Verdict::Done { poisoned: false }
        });
        assert_eq!(stats.tail_ms.iter().sum::<u64>(), 8, "all items complete");
        assert!(stats.deadline_escalations >= 1, "{stats:?}");
        assert!(stats.worker_strikes >= 1, "{stats:?}");
        assert!(stats.injected_faults >= 1, "{stats:?}");
    }

    #[test]
    fn stats_merge_and_render() {
        let mut a = ExecutorStats {
            workers: 2,
            items: 10,
            steals: 3,
            requeues: 1,
            warnings: vec!["w".into()],
            ..ExecutorStats::default()
        };
        let b = ExecutorStats {
            workers: 4,
            items: 6,
            deadline_escalations: 2,
            tail_ms: [1, 0, 0, 0, 0, 0, 0, 0, 1],
            ..ExecutorStats::default()
        };
        a.merge(&b);
        assert_eq!(a.workers, 4, "workers merge as max, not sum");
        assert_eq!(a.items, 16);
        assert_eq!(a.deadline_escalations, 2);
        assert_eq!(a.tail_ms[0], 1);
        let json = a.to_json("  ");
        assert!(json.contains("\"steals\": 3"), "{json}");
        assert!(json.contains("\"deadline_escalations\": 2"), "{json}");
        assert!(a.summary().contains("escalated"));
    }
}

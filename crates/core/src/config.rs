//! System configuration: Table 1 presets and experiment knobs.

use serde::{Deserialize, Serialize};

use refsim_cpu::core::CoreConfig;
use refsim_dram::backend::{BackendKind, TickPath};
use refsim_dram::controller::ControllerConfig;
use refsim_dram::geometry::Geometry;
use refsim_dram::mapping::MappingScheme;
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::shadow::ShadowConfig;
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, RefreshTiming, Retention, TimingParams};
use refsim_os::partition::PartitionPlan;
use refsim_os::sched::SchedPolicy;

use crate::error::RefsimError;
use crate::faults::FaultPlan;
use crate::sanitize::AuditLevel;

/// Default time-scale divisor: `tREFW` shrinks 32× (64 ms → 2 ms,
/// quantum 4 ms → 125 µs) so experiments complete quickly while every
/// refresh-overhead *ratio* is preserved (see DESIGN.md §2).
pub const DEFAULT_TIME_SCALE: u32 = 32;

/// Default advancement-step pitch: 250 ns. Completions that become
/// ready inside a step are delivered at its end, so the step is the
/// simulation's *temporal fidelity* — smaller steps deliver memory
/// completions (and thus unblock cores) closer to their true instants.
/// 250 ns trades fidelity for wall-clock cost under the fixed-step
/// engine; the event-horizon engine makes finer pitches affordable
/// because it only visits boundaries where something happens.
pub const DEFAULT_STEP: Ps = Ps(250_000);

fn default_step() -> Ps {
    DEFAULT_STEP
}

/// Simulation advancement engine (see DESIGN.md "Engine").
///
/// Both engines produce bit-identical state, metrics, and replay hashes;
/// `EventSkip` merely elides step boundaries at which no component can
/// act. `FixedStep` is retained for differential testing — the
/// engine-equivalence suite runs every configuration through both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// Crawl in fixed 250 ns steps (the original hot loop).
    FixedStep,
    /// Event-horizon engine: jump the clock to the earliest instant any
    /// core, scheduler quantum, or memory-controller completion can
    /// change system state.
    #[default]
    EventSkip,
}

/// How the per-channel memory backends are ticked inside one run (see
/// DESIGN.md "Intra-run channel sharding").
///
/// Channels are independent between enqueue points — a channel's
/// advance never reads core, scheduler, or sibling-channel state — so
/// a span's per-channel ticks commute. `Channel` exploits that by
/// fanning the per-step channel advances out over a scoped worker pool
/// while completions, traces, and stats are still merged in strict
/// channel order; results are bit-identical to `Serial` at any thread
/// count (pinned by the engine-equivalence suite). `Serial` is kept as
/// the correctness anchor, mirroring `TickPath::ScalarReference`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardMode {
    /// Walk channels one after another on the calling thread.
    #[default]
    Serial,
    /// Tick channels in parallel, one shard per channel, merged in
    /// channel order. Falls back to the serial walk when the effective
    /// worker count (or the channel count) is 1.
    Channel,
}

/// Full system configuration.
///
/// Build one from a preset and adjust fields with the `with_*` helpers:
///
/// ```
/// use refsim_core::config::SystemConfig;
/// use refsim_dram::timing::Density;
///
/// let cfg = SystemConfig::table1()
///     .with_density(Density::Gb24)
///     .co_design();
/// assert_eq!(cfg.density, Density::Gb24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of CPU cores.
    pub n_cores: u32,
    /// Memory channels.
    pub channels: u32,
    /// Ranks per channel (DIMMs/channel × ranks/DIMM; Table 1: 1 × 2).
    pub ranks_per_channel: u32,
    /// DRAM device density.
    pub density: Density,
    /// Retention window (64 ms below 85 °C, 32 ms above).
    pub retention: Retention,
    /// Refresh scheduling policy.
    pub refresh_policy: RefreshPolicyKind,
    /// Physical address mapping.
    pub mapping: MappingScheme,
    /// Memory partition plan (the software half of the co-design).
    pub partition: PartitionPlan,
    /// Process scheduling policy (the other software half).
    pub sched_policy: SchedPolicy,
    /// Time-scale divisor applied to `tREFW` and the OS quantum.
    pub time_scale: u32,
    /// OS scheduling quantum; `None` derives it from the refresh
    /// schedule: `tREFW / total_banks` (4 ms at full scale — §5.1).
    pub timeslice: Option<Ps>,
    /// Core model parameters.
    pub core: CoreConfig,
    /// Memory-controller queue parameters.
    pub controller: ControllerConfig,
    /// Context-switch cost charged to the incoming task.
    pub ctx_switch_cost: Ps,
    /// Minor page-fault service cost.
    pub fault_cost: Ps,
    /// Warm-up duration before statistics are measured.
    pub warmup: Ps,
    /// Measured duration (statistics window).
    pub measure: Ps,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Refresh-fault injection plan, expanded and installed into every
    /// memory controller at system construction. `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Runtime invariant auditing level (`simsan`); `Off` by default so
    /// un-audited runs stay bit-identical to previous releases.
    #[serde(default)]
    pub audit: AuditLevel,
    /// Simulation advancement engine. `EventSkip` by default — proven
    /// bit-identical to `FixedStep` by the engine-equivalence suite.
    #[serde(default)]
    pub engine: EngineKind,
    /// Advancement-step pitch (see [`DEFAULT_STEP`]). Both engines pace
    /// the same boundary lattice `clock + k·step`, so results are
    /// bit-identical across engines *at a given pitch*; changing the
    /// pitch changes completion-delivery instants and is a fidelity
    /// knob, not a cosmetic one.
    #[serde(default = "default_step")]
    pub step: Ps,
    /// Deliberate event-skip horizon overshoot (test-only negative
    /// control for the engine-equivalence harness; see
    /// `System::debug_skip_overshoot`). `ZERO` — the only sane value —
    /// by default. Non-zero values corrupt the run *on purpose*, so the
    /// run cache refuses to serve or store such runs.
    #[serde(default)]
    pub debug_skip_overshoot: Ps,
    /// Which DRAM timing model sits behind every channel's
    /// [`refsim_dram::backend::MemoryBackend`] slot. `Primary` — the
    /// FR-FCFS controller — by default; `Shadow` runs the independently
    /// written table-driven model used for differential validation.
    #[serde(default)]
    pub backend: BackendKind,
    /// Shadow-model knobs. The only current knob is the deliberate
    /// refresh-dropping perturbation used as the differential harness's
    /// negative control; runs with it set are never cached.
    #[serde(default)]
    pub shadow: ShadowConfig,
    /// Hot-path implementation selector (see
    /// [`refsim_dram::backend::TickPath`]). `Batched` — the
    /// struct-of-arrays lane scan plus the batched core loop — by
    /// default; `ScalarReference` preserves the pre-SoA walk verbatim as
    /// a differential anchor. Both are bit-identical (proven by the
    /// lane-equivalence suite), but the run cache still salts its
    /// fingerprint with this knob so the paths never serve each other's
    /// artifacts.
    #[serde(default)]
    pub tick_path: TickPath,
    /// Intra-run channel-shard mode (see [`ShardMode`]). `Serial` by
    /// default. The run cache salts its fingerprint with the mode (the
    /// `TickPath` convention) but *not* with the thread count, because
    /// sharded results are bit-identical at any thread count.
    #[serde(default)]
    pub shard: ShardMode,
    /// Worker-thread budget for [`ShardMode::Channel`]; `None` shares
    /// the sweep executor's budget (`REFSIM_THREADS`, else the host's
    /// available parallelism). The effective shard count is additionally
    /// capped at the channel count. Has no effect under
    /// [`ShardMode::Serial`].
    #[serde(default)]
    pub shard_threads: Option<u32>,
}

impl SystemConfig {
    /// The paper's Table 1 configuration at the default time scale:
    /// dual-core 3.2 GHz, 1 channel × 2 ranks × 8 banks, DDR3-1600,
    /// 32 Gb devices, 64 ms retention, all-bank refresh, bank-agnostic
    /// allocation, plain CFS — i.e. the *baseline* system.
    pub fn table1() -> Self {
        let scale = DEFAULT_TIME_SCALE;
        SystemConfig {
            n_cores: 2,
            channels: 1,
            ranks_per_channel: 2,
            density: Density::Gb32,
            retention: Retention::Ms64,
            refresh_policy: RefreshPolicyKind::AllBank,
            mapping: MappingScheme::RowRankBankColumn,
            partition: PartitionPlan::None,
            sched_policy: SchedPolicy::Cfs,
            time_scale: scale,
            timeslice: None,
            core: CoreConfig::table1(),
            controller: ControllerConfig::default(),
            ctx_switch_cost: Ps::from_ns(250),
            fault_cost: Ps::from_ns(150),
            warmup: Retention::Ms64.trefw() / u64::from(scale),
            measure: Retention::Ms64.trefw() / u64::from(scale) * 2,
            seed: 0x5EED,
            fault_plan: None,
            audit: AuditLevel::Off,
            engine: EngineKind::default(),
            step: default_step(),
            debug_skip_overshoot: Ps::ZERO,
            backend: BackendKind::Primary,
            shadow: ShadowConfig::default(),
            tick_path: TickPath::Batched,
            shard: ShardMode::Serial,
            shard_threads: None,
        }
    }

    /// Switches on the full co-design: the proposed sequential per-bank
    /// refresh schedule, soft memory partitioning, and refresh-aware
    /// scheduling (§5).
    pub fn co_design(mut self) -> Self {
        self.refresh_policy = RefreshPolicyKind::PerBankSequential;
        self.partition = PartitionPlan::Soft;
        self.sched_policy = SchedPolicy::refresh_aware();
        self
    }

    /// Sets the refresh policy (leaving allocation/scheduling alone).
    pub fn with_refresh(mut self, policy: RefreshPolicyKind) -> Self {
        self.refresh_policy = policy;
        self
    }

    /// Sets the device density.
    pub fn with_density(mut self, density: Density) -> Self {
        self.density = density;
        self
    }

    /// Sets the retention window, rescaling warm-up/measure windows to
    /// keep covering the same number of retention windows.
    pub fn with_retention(mut self, retention: Retention) -> Self {
        let windows_warm = self.warmup / self.trefw();
        let windows_meas = (self.measure / self.trefw()).max(1);
        self.retention = retention;
        let w = self.trefw();
        self.warmup = w * windows_warm.max(1);
        self.measure = w * windows_meas;
        self
    }

    /// Sets the partition plan.
    pub fn with_partition(mut self, plan: PartitionPlan) -> Self {
        self.partition = plan;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_sched(mut self, policy: SchedPolicy) -> Self {
        self.sched_policy = policy;
        self
    }

    /// Sets core count.
    pub fn with_cores(mut self, n: u32) -> Self {
        self.n_cores = n;
        self
    }

    /// Sets ranks per channel (2 per DIMM; §6.6 scales DIMMs/channel).
    pub fn with_ranks(mut self, ranks: u32) -> Self {
        self.ranks_per_channel = ranks;
        self
    }

    /// Sets the memory-channel count. Channels are interleaved at page
    /// granularity by the address mapping; each channel gets its own
    /// independent controller running the same refresh policy, and the
    /// refresh-aware co-design generalizes across them (one busy bank
    /// per channel fed to Algorithm 3).
    pub fn with_channels(mut self, channels: u32) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the intra-run channel-shard mode (see [`ShardMode`]).
    pub fn with_shard(mut self, mode: ShardMode) -> Self {
        self.shard = mode;
        self
    }

    /// Selects [`ShardMode::Channel`] with an explicit worker-thread
    /// budget (see [`SystemConfig::shard_threads`]).
    pub fn with_shard_threads(mut self, threads: u32) -> Self {
        self.shard = ShardMode::Channel;
        self.shard_threads = Some(threads);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Turns on the retention-integrity oracle in every memory
    /// controller (per-row last-refresh tracking against `tREFW`).
    pub fn with_retention_tracking(mut self) -> Self {
        self.controller.track_retention = true;
        self
    }

    /// Installs a refresh-fault injection plan. Plans that drop refresh
    /// commands require retention tracking (see
    /// [`SystemConfig::validate`]): a skipped refresh without the oracle
    /// would be silent data loss.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the simulation advancement engine (see [`EngineKind`]).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the advancement-step pitch (see [`SystemConfig::step`]).
    /// Finer pitches raise temporal fidelity at higher fixed-step cost;
    /// the event-horizon engine absorbs most of that cost by skipping
    /// empty boundaries.
    pub fn with_step(mut self, step: Ps) -> Self {
        self.step = step;
        self
    }

    /// Sets the runtime invariant-audit level (see [`crate::sanitize`]).
    pub fn with_audit(mut self, level: AuditLevel) -> Self {
        self.audit = level;
        self
    }

    /// Sets the deliberate skip-overshoot amount (negative-control knob;
    /// see [`SystemConfig::debug_skip_overshoot`]).
    pub fn with_debug_skip_overshoot(mut self, extra: Ps) -> Self {
        self.debug_skip_overshoot = extra;
        self
    }

    /// Selects the DRAM timing model behind every channel (see
    /// [`SystemConfig::backend`]).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the hot-path implementation (see
    /// [`SystemConfig::tick_path`]).
    pub fn with_tick_path(mut self, path: TickPath) -> Self {
        self.tick_path = path;
        self
    }

    /// Sets the deliberate shadow-model refresh-dropping perturbation
    /// (differential-harness negative control; see
    /// [`SystemConfig::shadow`]). Implies nothing unless the shadow
    /// backend is selected.
    pub fn with_shadow_drop_every(mut self, n: u64) -> Self {
        self.shadow.drop_refresh_every = n;
        self
    }

    /// Sets the time scale, rescaling warm-up/measure windows.
    pub fn with_time_scale(mut self, scale: u32) -> Self {
        assert!(scale >= 1);
        let windows_warm = (self.warmup / self.trefw()).max(1);
        let windows_meas = (self.measure / self.trefw()).max(1);
        self.time_scale = scale;
        let w = self.trefw();
        self.warmup = w * windows_warm;
        self.measure = w * windows_meas;
        self
    }

    /// The (scaled) retention window.
    pub fn trefw(&self) -> Ps {
        self.retention.trefw() / u64::from(self.time_scale)
    }

    /// DRAM geometry implied by this configuration.
    pub fn geometry(&self) -> Geometry {
        Geometry {
            channels: self.channels,
            ranks_per_channel: self.ranks_per_channel,
            banks_per_rank: 8,
            rows_per_bank: self.density.rows_per_bank(),
            row_bytes: 4096,
            line_bytes: 64,
        }
    }

    /// Refresh timing implied by this configuration.
    pub fn refresh_timing(&self) -> RefreshTiming {
        RefreshTiming::scaled(self.density, self.retention, self.time_scale)
    }

    /// DDR timing parameters (DDR3-1600 per Table 1).
    pub fn timing_params(&self) -> TimingParams {
        TimingParams::ddr3_1600()
    }

    /// The effective scheduling quantum: explicit `timeslice`, or the
    /// sequential refresh schedule's slice length — `tREFW / totalBanks`
    /// when the serial one-bank-at-a-time schedule is feasible (§5.1's
    /// 4 ms at 64 ms / 16 banks), else `tREFW / banksPerRank` for the
    /// parallel per-rank schedule used at 32 ms retention.
    pub fn effective_timeslice(&self) -> Ps {
        self.timeslice.unwrap_or_else(|| {
            let g = self.geometry();
            self.refresh_timing()
                .sequential_slice(g.banks_per_channel(), g.banks_per_rank)
        })
    }

    /// Total global banks.
    pub fn total_banks(&self) -> u32 {
        self.geometry().total_banks()
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`RefsimError::InvalidConfig`] describing the first
    /// inconsistency (zero cores, too many global banks for the
    /// bank-vector word, bad geometry…), so sweep harnesses record a
    /// typed error row instead of parsing strings.
    pub fn validate(&self) -> Result<(), RefsimError> {
        let bad = |why: String| Err(RefsimError::InvalidConfig(why));
        if self.n_cores == 0 {
            return bad("n_cores must be >= 1".to_owned());
        }
        self.geometry()
            .validate()
            .map_err(RefsimError::InvalidConfig)?;
        self.timing_params()
            .validate()
            .map_err(RefsimError::InvalidConfig)?;
        if self.total_banks() > 64 {
            // `BankVector` (task exclusion windows, busy-bank sets) is a
            // single u64 bitmask over *global* banks.
            return bad(format!(
                "{} global banks exceed the 64-bank BankVector word \
                 (channels × ranks × 8); shrink the geometry",
                self.total_banks()
            ));
        }
        if self.measure == Ps::ZERO {
            return bad("measure window must be non-empty".to_owned());
        }
        if self.step == Ps::ZERO {
            return bad("advancement step must be positive".to_owned());
        }
        if self.shard_threads == Some(0) {
            return bad("shard_threads must be >= 1 when set".to_owned());
        }
        if self.effective_timeslice() == Ps::ZERO {
            return bad("timeslice must be positive".to_owned());
        }
        if let Some(plan) = &self.fault_plan {
            if plan.skip_ppm > 0 && plan.horizon > 0 && !self.controller.track_retention {
                return bad(
                    "fault plans that skip refreshes require retention tracking \
                     (silent data loss otherwise); enable with_retention_tracking()"
                        .to_owned(),
                );
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_valid_baseline() {
        let c = SystemConfig::table1();
        assert!(c.validate().is_ok());
        assert_eq!(c.n_cores, 2);
        assert_eq!(c.total_banks(), 16);
        assert_eq!(c.refresh_policy, RefreshPolicyKind::AllBank);
        assert_eq!(c.partition, PartitionPlan::None);
    }

    #[test]
    fn timeslice_matches_refresh_slice() {
        // Full scale: 64 ms / 16 banks = 4 ms (§5.1 = the OS quantum).
        let c = SystemConfig::table1().with_time_scale(1);
        assert_eq!(c.effective_timeslice(), Ps::from_ms(4));
        // Default scale 32: 125 µs.
        let c = SystemConfig::table1();
        assert_eq!(c.effective_timeslice(), Ps::from_us(125));
    }

    #[test]
    fn timeslice_4ms_at_32ms_retention() {
        // At 32 ms retention the serial one-bank-at-a-time schedule is
        // infeasible (tREFIab/16 < tRFCpb), so the parallel per-rank
        // schedule is used: tREFW / banksPerRank = 4 ms slices. (The
        // paper's footnote 12 quotes 2 ms, but that command rate cannot
        // fit tRFCpb-long refreshes; see DESIGN.md.)
        let c = SystemConfig::table1()
            .with_retention(Retention::Ms32)
            .with_time_scale(1);
        assert_eq!(c.effective_timeslice(), Ps::from_ms(4));
    }

    #[test]
    fn co_design_flips_all_three_pieces() {
        let c = SystemConfig::table1().co_design();
        assert_eq!(c.refresh_policy, RefreshPolicyKind::PerBankSequential);
        assert_eq!(c.partition, PartitionPlan::Soft);
        assert!(matches!(c.sched_policy, SchedPolicy::RefreshAware { .. }));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn retention_change_rescales_windows() {
        let c = SystemConfig::table1();
        let w64 = c.trefw();
        assert_eq!(c.warmup, w64);
        assert_eq!(c.measure, w64 * 2);
        let c32 = c.with_retention(Retention::Ms32);
        assert_eq!(c32.warmup, c32.trefw());
        assert_eq!(c32.measure, c32.trefw() * 2);
        assert_eq!(c32.trefw(), w64 / 2);
    }

    #[test]
    fn more_dimms_mean_more_banks() {
        let c = SystemConfig::table1().with_ranks(4);
        assert_eq!(c.total_banks(), 32);
        // With 32 banks the serial schedule is infeasible (tREFIab/32 <
        // tRFCpb), so the parallel per-rank schedule's tREFW/8 slices
        // set the quantum.
        assert_eq!(c.effective_timeslice(), c.trefw() / 8);
    }

    #[test]
    fn validate_rejects_zero_step() {
        let c = SystemConfig::table1().with_step(Ps::ZERO);
        let e = c.validate().unwrap_err();
        assert!(matches!(e, RefsimError::InvalidConfig(_)), "{e:?}");
        assert!(e.to_string().contains("step"), "{e}");
        assert!(SystemConfig::table1()
            .with_step(Ps(1_250))
            .validate()
            .is_ok());
        assert_eq!(SystemConfig::table1().step, DEFAULT_STEP);
    }

    #[test]
    fn multichannel_refresh_aware_is_allowed() {
        // The co-design generalizes across channels (one busy bank per
        // channel); multi-channel geometries validate up to the 64-bank
        // BankVector word.
        for channels in [2u32, 4] {
            let c = SystemConfig::table1().co_design().with_channels(channels);
            assert!(c.validate().is_ok(), "channels = {channels}");
            assert_eq!(c.total_banks(), channels * 16);
        }
    }

    #[test]
    fn validate_rejects_geometries_past_the_bankvector_word() {
        // 8 channels × 2 ranks × 8 banks = 128 global banks > 64.
        let c = SystemConfig::table1().with_channels(8);
        let e = c.validate().unwrap_err();
        assert!(matches!(e, RefsimError::InvalidConfig(_)), "{e:?}");
        assert!(e.to_string().contains("64-bank"), "{e}");
        // 8 channels × 1 rank × 8 banks = 64 fits exactly.
        let c = SystemConfig::table1().with_channels(8).with_ranks(1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_shard_threads() {
        let mut c = SystemConfig::table1().with_shard_threads(1);
        assert!(c.validate().is_ok());
        c.shard_threads = Some(0);
        let e = c.validate().unwrap_err();
        assert!(e.to_string().contains("shard_threads"), "{e}");
    }

    #[test]
    fn skip_faults_without_oracle_are_rejected() {
        let mut plan = FaultPlan::none(1);
        plan.skip_ppm = 1_000;
        plan.horizon = 100;
        let c = SystemConfig::table1().with_fault_plan(plan.clone());
        let e = c.validate().unwrap_err();
        assert!(matches!(e, RefsimError::InvalidConfig(_)), "{e:?}");
        assert!(e.to_string().contains("retention tracking"), "{e}");
        let c = SystemConfig::table1()
            .with_retention_tracking()
            .with_fault_plan(plan);
        assert!(c.validate().is_ok());
        assert!(c.controller.track_retention);
    }

    #[test]
    fn geometry_scales_with_density() {
        let c = SystemConfig::table1().with_density(Density::Gb16);
        assert_eq!(c.geometry().rows_per_bank, 256 * 1024);
        assert_eq!(c.geometry().total_bytes(), 16 << 30);
    }
}

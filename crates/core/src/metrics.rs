//! Run metrics: per-task IPC, harmonic means, and the paper's reporting
//! conventions (§6.1: "performance improvements reported … are the
//! improvements in harmonic mean of the IPC of the workload relative to
//! the baseline").

use serde::{Deserialize, Serialize};

use refsim_dram::power::{energy, EnergyBreakdown, PowerParams};
use refsim_dram::stats::ControllerStats;
use refsim_dram::time::Ps;
use refsim_os::sched::SchedStats;

/// Measured-phase statistics for one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Task index within the workload.
    pub task: u32,
    /// Benchmark label.
    pub label: String,
    /// Instructions retired during the measured phase.
    pub instructions: u64,
    /// Time the task occupied a CPU.
    pub cpu_time: Ps,
    /// Of that, time stalled on memory.
    pub stall_time: Ps,
    /// LLC misses issued.
    pub llc_misses: u64,
    /// Demand page faults taken.
    pub faults: u64,
    /// Pages placed outside the task's permitted banks.
    pub spilled_pages: u64,
    /// Times the task was scheduled.
    pub schedules: u64,
}

impl TaskMetrics {
    /// Instructions per CPU cycle *while scheduled* — the per-task IPC
    /// the harmonic mean aggregates.
    pub fn ipc(&self, cpu_period: Ps) -> f64 {
        if self.cpu_time == Ps::ZERO {
            return 0.0;
        }
        let cycles = self.cpu_time.as_ps() as f64 / cpu_period.as_ps() as f64;
        self.instructions as f64 / cycles
    }

    /// LLC misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.llc_misses as f64 * 1000.0 / self.instructions as f64
    }

    /// Fraction of scheduled time spent stalled on memory.
    pub fn stall_fraction(&self) -> f64 {
        if self.cpu_time == Ps::ZERO {
            return 0.0;
        }
        self.stall_time.as_ps() as f64 / self.cpu_time.as_ps() as f64
    }
}

/// Statistics for one complete simulation run (measured phase only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-task metrics, in task order.
    pub tasks: Vec<TaskMetrics>,
    /// Length of the measured window.
    pub sim_time: Ps,
    /// Channel-0 controller counters (merged across channels when
    /// several exist).
    pub controller: ControllerStats,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// CPU clock period (for IPC computation).
    pub cpu_period: Ps,
    /// DRAM clock period (for latency-in-memory-cycles reporting).
    pub dram_period: Ps,
}

impl RunMetrics {
    /// Harmonic mean of per-task IPCs — the paper's headline metric.
    pub fn hmean_ipc(&self) -> f64 {
        let n = self.tasks.len();
        if n == 0 {
            return 0.0;
        }
        let denom: f64 = self
            .tasks
            .iter()
            .map(|t| 1.0 / t.ipc(self.cpu_period).max(1e-12))
            .sum();
        n as f64 / denom
    }

    /// Arithmetic-mean IPC (secondary diagnostic).
    pub fn amean_ipc(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks
            .iter()
            .map(|t| t.ipc(self.cpu_period))
            .sum::<f64>()
            / self.tasks.len() as f64
    }

    /// Speedup of this run's harmonic-mean IPC over `baseline`'s
    /// (1.0 = parity; the figures plot this normalized value).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        let b = baseline.hmean_ipc();
        if b <= 0.0 {
            return 0.0;
        }
        self.hmean_ipc() / b
    }

    /// Average DRAM read latency in memory cycles (Figure 11's metric).
    pub fn avg_read_latency_cycles(&self) -> f64 {
        self.controller
            .avg_read_latency_cycles(self.dram_period)
            .unwrap_or(0.0)
    }

    /// DRAM energy breakdown over the measured window under `params`.
    pub fn energy(&self, params: &PowerParams) -> EnergyBreakdown {
        energy(&self.controller, self.sim_time, params)
    }

    /// Energy per kilo-instruction (nJ) — the efficiency metric where
    /// faster schemes win through reduced background energy.
    pub fn energy_per_kilo_instruction(&self, params: &PowerParams) -> f64 {
        let instr: u64 = self.tasks.iter().map(|t| t.instructions).sum();
        if instr == 0 {
            return 0.0;
        }
        self.energy(params).total_nj() * 1000.0 / instr as f64
    }

    /// Aggregate MPKI over all tasks.
    pub fn mpki(&self) -> f64 {
        let instr: u64 = self.tasks.iter().map(|t| t.instructions).sum();
        let misses: u64 = self.tasks.iter().map(|t| t.llc_misses).sum();
        if instr == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / instr as f64
        }
    }
}

/// Geometric mean of an iterator of positive values (used when averaging
/// normalized speedups across workloads).
pub fn gmean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        assert!(v > 0.0, "gmean needs positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / f64::from(n)).exp()
}

/// [`gmean`] over only the finite, positive values — the error-tolerant
/// variant experiment sweeps use: a failed run contributes `NaN` to its
/// speedup column, which is filtered here rather than poisoning the
/// whole average. Returns `None` when *no* value survives the filter
/// (an empty or all-error column), so tables render the cell as `n/a`
/// via [`crate::report::Table::fmt_opt_f`] instead of a `NaN` that
/// silently propagates through downstream arithmetic.
pub fn gmean_finite(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let ok: Vec<f64> = values
        .into_iter()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if ok.is_empty() {
        return None;
    }
    Some(gmean(ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm(instr: u64, cpu_ms: u64) -> TaskMetrics {
        TaskMetrics {
            task: 0,
            label: "t".into(),
            instructions: instr,
            cpu_time: Ps::from_ms(cpu_ms),
            stall_time: Ps::ZERO,
            llc_misses: 0,
            faults: 0,
            spilled_pages: 0,
            schedules: 1,
        }
    }

    fn run(tasks: Vec<TaskMetrics>) -> RunMetrics {
        RunMetrics {
            tasks,
            sim_time: Ps::from_ms(4),
            controller: ControllerStats::default(),
            sched: SchedStats::default(),
            cpu_period: Ps::from_ps(312),
            dram_period: Ps::from_ps(1250),
        }
    }

    #[test]
    fn ipc_is_per_scheduled_cycle() {
        let t = tm(3_205_128, 1); // 1 ms at 312 ps = 3.205M cycles
        let ipc = t.ipc(Ps::from_ps(312));
        assert!((ipc - 1.0).abs() < 1e-3, "{ipc}");
    }

    #[test]
    fn zero_cpu_time_gives_zero_ipc() {
        let t = tm(100, 0);
        assert_eq!(t.ipc(Ps::from_ps(312)), 0.0);
    }

    #[test]
    fn hmean_punishes_slow_tasks() {
        // IPCs 2.0 and ~0.667: hmean = 1.0, amean ≈ 1.33.
        let fast = tm(6_410_256, 1);
        let slow = tm(2_136_752, 1);
        let r = run(vec![fast, slow]);
        assert!((r.hmean_ipc() - 1.0).abs() < 2e-3, "{}", r.hmean_ipc());
        assert!(r.amean_ipc() > r.hmean_ipc());
    }

    #[test]
    fn speedup_is_ratio_of_hmeans() {
        let base = run(vec![tm(1_000_000, 1)]);
        let better = run(vec![tm(1_162_000, 1)]);
        let s = better.speedup_over(&base);
        assert!((s - 1.162).abs() < 1e-3, "{s}");
    }

    #[test]
    fn stall_fraction_and_mpki() {
        let mut t = tm(1_000_000, 2);
        t.stall_time = Ps::from_ms(1);
        t.llc_misses = 25_000;
        assert!((t.stall_fraction() - 0.5).abs() < 1e-12);
        assert!((t.mpki() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_basics() {
        assert!((gmean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(gmean(std::iter::empty()), 0.0);
        assert!((gmean([1.05, 1.05, 1.05]) - 1.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_nonpositive() {
        let _ = gmean([1.0, 0.0]);
    }

    #[test]
    fn gmean_finite_filters_failed_runs() {
        assert!((gmean_finite([2.0, f64::NAN, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((gmean_finite([1.5, f64::INFINITY, 0.0]).unwrap() - 1.5).abs() < 1e-12);
        // Empty and all-error columns have no mean at all — `None`, so
        // report cells show `n/a` rather than NaN leaking into math.
        assert_eq!(gmean_finite([f64::NAN]), None);
        assert_eq!(gmean_finite([f64::NAN, f64::INFINITY, -3.0]), None);
        assert_eq!(gmean_finite(std::iter::empty()), None);
    }

    #[test]
    fn empty_run_is_zero() {
        let r = run(vec![]);
        assert_eq!(r.hmean_ipc(), 0.0);
        assert_eq!(r.amean_ipc(), 0.0);
        assert_eq!(r.mpki(), 0.0);
    }
}

//! A small open-addressing hash map keyed by `u64`, hashed with FNV-1a.
//!
//! [`std::collections::HashMap`] pays for SipHash (DoS resistance the
//! simulator does not need) and its default hasher allocates per map.
//! Request ids are sequential `u64`s, so the hot `inflight` table in
//! [`crate::system::System`] — one insert and one remove per LLC miss —
//! wants the cheapest possible mixing. FNV-1a over the 8 key bytes
//! distributes sequential keys well and is already this workspace's
//! standard hash (checkpoints, replay state digests).
//!
//! The table uses linear probing with backward-shift deletion (no
//! tombstones, so long-lived maps never degrade), grows at ⅞ load, and
//! never shrinks — steady-state stepping performs zero allocations once
//! the high-water capacity is reached.
//!
//! # Examples
//!
//! ```
//! use refsim_core::fastmap::FnvMap;
//!
//! let mut m: FnvMap<u32> = FnvMap::new();
//! m.insert(7, 42);
//! assert_eq!(m.get(7), Some(&42));
//! assert_eq!(m.remove(7), Some(42));
//! assert!(m.is_empty());
//! ```

/// FNV-1a over the little-endian bytes of `k`.
#[inline]
fn fnv1a_u64(k: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in k.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An open-addressing `u64 → V` map hashed with FNV-1a.
///
/// See the [module docs](self) for the design rationale.
#[derive(Debug, Clone)]
pub struct FnvMap<V> {
    /// Power-of-two slot array; `None` is an empty slot.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> Default for FnvMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FnvMap<V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FnvMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    fn ideal(&self, k: u64) -> usize {
        (fnv1a_u64(k) as usize) & self.mask()
    }

    /// The slot holding `k`, if present.
    #[inline]
    fn find(&self, k: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = self.ideal(k);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((key, _)) if *key == k => return Some(i),
                Some(_) => i = (i + 1) & self.mask(),
            }
        }
    }

    /// Looks up the value stored under `k`.
    pub fn get(&self, k: u64) -> Option<&V> {
        let i = self.find(k)?;
        self.slots[i].as_ref().map(|(_, v)| v)
    }

    /// Whether `k` is present.
    pub fn contains_key(&self, k: u64) -> bool {
        self.find(k).is_some()
    }

    /// Inserts `k → v`, returning the value it replaces, if any.
    pub fn insert(&mut self, k: u64, v: V) -> Option<V> {
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.ideal(k);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((k, v));
                    self.len += 1;
                    return None;
                }
                Some((key, val)) if *key == k => {
                    return Some(std::mem::replace(val, v));
                }
                Some(_) => i = (i + 1) & self.mask(),
            }
        }
    }

    /// Removes `k`, returning its value if it was present.
    ///
    /// Uses backward-shift deletion: subsequent entries of the probe
    /// chain slide back over the hole, so no tombstones accumulate.
    pub fn remove(&mut self, k: u64) -> Option<V> {
        let mut hole = self.find(k)?;
        let (_, v) = self.slots[hole].take()?;
        self.len -= 1;
        let mask = self.mask();
        let mut i = hole;
        loop {
            i = (i + 1) & mask;
            let Some((key, _)) = self.slots[i] else {
                break;
            };
            let ideal = (fnv1a_u64(key) as usize) & mask;
            // `i`'s entry may move into the hole only if its probe chain
            // passes through the hole: ideal ∉ (hole, i] cyclically.
            let dist_from_ideal = i.wrapping_sub(ideal) & mask;
            let dist_from_hole = i.wrapping_sub(hole) & mask;
            if dist_from_ideal >= dist_from_hole {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
        }
        Some(v)
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Number of slots currently allocated (the map's capacity proxy;
    /// stable slot count across a window means zero rehash traffic).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FnvMap::new();
        for k in 0..1000u64 {
            assert_eq!(m.insert(k, k * 3), None);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(&(k * 3)));
        }
        for k in (0..1000u64).step_by(2) {
            assert_eq!(m.remove(k), Some(k * 3));
        }
        assert_eq!(m.len(), 500);
        for k in 0..1000u64 {
            if k % 2 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&(k * 3)));
            }
        }
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut m = FnvMap::new();
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(5, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), Some(&"b"));
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut m = FnvMap::new();
        for k in 0..100u64 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        m.insert(1, 2);
        assert_eq!(m.get(1), Some(&2));
    }

    /// Deterministic pseudo-random torture against std's HashMap: the
    /// backward-shift deletion must preserve every probe chain.
    #[test]
    fn mirrors_std_hashmap_under_mixed_churn() {
        let mut m = FnvMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for step in 0..20_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Small key space forces heavy collision + reuse traffic.
            let k = (state >> 33) % 257;
            match state % 3 {
                0 | 1 => {
                    assert_eq!(m.insert(k, step), reference.insert(k, step), "key {k}");
                }
                _ => {
                    assert_eq!(m.remove(k), reference.remove(&k), "key {k}");
                }
            }
            assert_eq!(m.len(), reference.len());
        }
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(&v));
        }
        assert_eq!(m.iter().count(), reference.len());
    }

    #[test]
    fn sequential_ids_with_wraparound_reuse() {
        // The inflight table's exact pattern: monotonically increasing
        // ids inserted and removed in FIFO-ish order, plus ids reused
        // from an earlier epoch (checkpoint/restore rewinds next_req).
        let mut m = FnvMap::new();
        for k in 0..64u64 {
            m.insert(k, k);
        }
        for k in 0..64u64 {
            assert_eq!(m.remove(k), Some(k));
        }
        for k in 0..64u64 {
            assert_eq!(m.insert(k, k + 100), None, "reused id {k} must be fresh");
            assert_eq!(m.get(k), Some(&(k + 100)));
        }
    }
}

//! Crash-safe checkpoint images of a whole [`crate::system::System`].
//!
//! A checkpoint captures **dynamic state only**: the configuration and
//! workload mix are *not* stored. Restoring means rebuilding a fresh
//! `System` from the same `(config, mix)` pair and importing the saved
//! dynamic state into it; the 64-bit canonical `(config, mix)`
//! fingerprint (see [`crate::runcache`]) travels with every image so a
//! mismatched rebuild is rejected instead of silently diverging.
//!
//! # File format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RFSM"
//! 4       4     format version (little-endian u32, currently 1)
//! 8       8     config fingerprint (canonical; see `runcache`)
//! 16      8     payload length N
//! 24      N     payload: SavedSystem via the crate codec
//! 24+N    8     checksum: FNV-1a over bytes [0, 24+N)
//! ```
//!
//! Not captured (by design): controller command-trace buffers
//! (diagnostic only), the fault plan and every other configuration input
//! (re-derived when the `System` is rebuilt), and floating-point
//! *derived* reporting values outside `last_utilization`. Everything
//! that feeds future simulation decisions **is** captured, which is what
//! makes a resumed run bit-identical to an uninterrupted one under the
//! same step segmentation.

use std::fmt;
use std::path::Path;

use refsim_dram::backend::SavedBackend;
use refsim_dram::time::Ps;
use refsim_os::bank_alloc::SavedBankAlloc;
use refsim_os::sched::{SavedScheduler, SchedStats};
use refsim_os::vm::SavedAddressSpace;
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::SavedWorkload;

use refsim_cpu::core::SavedExecContext;
use refsim_cpu::hierarchy::SavedHierarchy;

use crate::codec::{self, CodecError, Dec, Enc, Snapshot};
use crate::config::SystemConfig;
use crate::vfs::{self, StdVfs, Vfs, VfsError};

/// Magic number opening every checkpoint image.
pub const MAGIC: [u8; 4] = *b"RFSM";
/// Current checkpoint format version. v2 made the per-channel memory
/// image a tagged [`SavedBackend`] (primary controller or shadow model)
/// instead of a bare controller image.
pub const VERSION: u32 = 2;

/// A memory operation awaiting queue space, as saved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedPendingMem {
    /// Dirty victim still to be enqueued as a writeback.
    pub writeback: Option<u64>,
    /// Fill (line address) still to be enqueued as a read.
    pub fill: Option<u64>,
    /// The faulting access was a store.
    pub write: bool,
    /// The faulting access was a serializing load.
    pub dependent: bool,
}

/// Per-task simulation state (workload position + execution context), as
/// saved.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedSim {
    /// Workload generator state.
    pub wl: SavedWorkload,
    /// Core execution context.
    pub ctx: SavedExecContext,
    /// Back-pressured memory operation, if any.
    pub pending: Option<SavedPendingMem>,
}

/// Per-core state, as saved.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedCore {
    /// Private L1+L2 stack.
    pub caches: SavedHierarchy,
    /// Task currently scheduled on the core.
    pub current: Option<u32>,
    /// Context-clock instant the current task was scheduled.
    pub sched_base: Ps,
    /// End of the current quantum.
    pub quantum_end: Ps,
    /// In-flight fill lines `(line address, request id)`, sorted by line
    /// address for byte-deterministic encoding.
    pub inflight_lines: Vec<(u64, u64)>,
}

/// OS task-control-block state, as saved. The id and label are
/// configuration (re-derived from the mix on rebuild) and not stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedTask {
    /// CFS virtual runtime.
    pub vruntime: Ps,
    /// Scheduling state (0 runnable, 1 running, 2 blocked).
    pub state: u8,
    /// CPU the task is enqueued on.
    pub cpu: u32,
    /// Permitted-banks vector, as bits.
    pub possible_banks: u64,
    /// Round-robin allocation cursor.
    pub last_alloced_bank: u32,
    /// Address space (page table + fault count).
    pub mm: SavedAddressSpace,
    /// Bytes allocated per global bank.
    pub bytes_per_bank: Vec<u64>,
    /// Pages placed outside the permitted banks.
    pub spilled_pages: u64,
    /// Total CPU time consumed.
    pub cpu_time: Ps,
    /// Times scheduled onto a CPU.
    pub schedules: u64,
}

/// One in-flight read fill: request id → (task, core, line address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedInflight {
    /// Request id.
    pub id: u64,
    /// Task awaiting the fill.
    pub task: u32,
    /// Core awaiting the fill.
    pub core: u8,
    /// Line address being filled.
    pub line: u64,
}

/// Measurement-phase baseline counters for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SavedBaseline {
    /// Instructions at the measurement boundary.
    pub instructions: u64,
    /// Stall time at the boundary.
    pub stall: Ps,
    /// LLC misses at the boundary.
    pub misses: u64,
    /// Page faults at the boundary.
    pub faults: u64,
    /// Spilled pages at the boundary.
    pub spilled: u64,
    /// CPU time at the boundary.
    pub cpu_time: Ps,
    /// Schedules at the boundary.
    pub schedules: u64,
}

/// The complete dynamic state of a [`crate::system::System`], captured
/// by [`crate::system::System::export_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct SavedSystem {
    /// Simulation clock.
    pub clock: Ps,
    /// Next memory-request id.
    pub next_req: u64,
    /// Start of the measured phase.
    pub measure_start: Ps,
    /// Per-channel memory backends (tagged: primary controller or
    /// shadow model).
    pub mcs: Vec<SavedBackend>,
    /// Per-core state.
    pub cores: Vec<SavedCore>,
    /// OS task table (parallel to `sims`).
    pub tasks: Vec<SavedTask>,
    /// Per-task simulation state (parallel to `tasks`).
    pub sims: Vec<SavedSim>,
    /// Process scheduler (runqueues + stats).
    pub sched: SavedScheduler,
    /// Bank-aware page allocator.
    pub alloc: SavedBankAlloc,
    /// In-flight read fills, sorted by request id.
    pub inflight: Vec<SavedInflight>,
    /// Measurement baselines, in task order.
    pub base: Vec<SavedBaseline>,
    /// Scheduler stats at the measurement boundary.
    pub sched_base_stats: SchedStats,
}

impl Snapshot for SavedPendingMem {
    fn encode(&self, e: &mut Enc) {
        self.writeback.encode(e);
        self.fill.encode(e);
        self.write.encode(e);
        self.dependent.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedPendingMem {
            writeback: Snapshot::decode(d)?,
            fill: Snapshot::decode(d)?,
            write: Snapshot::decode(d)?,
            dependent: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedSim {
    fn encode(&self, e: &mut Enc) {
        self.wl.encode(e);
        self.ctx.encode(e);
        self.pending.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedSim {
            wl: Snapshot::decode(d)?,
            ctx: Snapshot::decode(d)?,
            pending: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedCore {
    fn encode(&self, e: &mut Enc) {
        self.caches.encode(e);
        self.current.encode(e);
        self.sched_base.encode(e);
        self.quantum_end.encode(e);
        self.inflight_lines.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedCore {
            caches: Snapshot::decode(d)?,
            current: Snapshot::decode(d)?,
            sched_base: Snapshot::decode(d)?,
            quantum_end: Snapshot::decode(d)?,
            inflight_lines: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedTask {
    fn encode(&self, e: &mut Enc) {
        self.vruntime.encode(e);
        self.state.encode(e);
        self.cpu.encode(e);
        self.possible_banks.encode(e);
        self.last_alloced_bank.encode(e);
        self.mm.encode(e);
        self.bytes_per_bank.encode(e);
        self.spilled_pages.encode(e);
        self.cpu_time.encode(e);
        self.schedules.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedTask {
            vruntime: Snapshot::decode(d)?,
            state: Snapshot::decode(d)?,
            cpu: Snapshot::decode(d)?,
            possible_banks: Snapshot::decode(d)?,
            last_alloced_bank: Snapshot::decode(d)?,
            mm: Snapshot::decode(d)?,
            bytes_per_bank: Snapshot::decode(d)?,
            spilled_pages: Snapshot::decode(d)?,
            cpu_time: Snapshot::decode(d)?,
            schedules: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedInflight {
    fn encode(&self, e: &mut Enc) {
        self.id.encode(e);
        self.task.encode(e);
        self.core.encode(e);
        self.line.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedInflight {
            id: Snapshot::decode(d)?,
            task: Snapshot::decode(d)?,
            core: Snapshot::decode(d)?,
            line: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedBaseline {
    fn encode(&self, e: &mut Enc) {
        self.instructions.encode(e);
        self.stall.encode(e);
        self.misses.encode(e);
        self.faults.encode(e);
        self.spilled.encode(e);
        self.cpu_time.encode(e);
        self.schedules.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedBaseline {
            instructions: Snapshot::decode(d)?,
            stall: Snapshot::decode(d)?,
            misses: Snapshot::decode(d)?,
            faults: Snapshot::decode(d)?,
            spilled: Snapshot::decode(d)?,
            cpu_time: Snapshot::decode(d)?,
            schedules: Snapshot::decode(d)?,
        })
    }
}

impl Snapshot for SavedSystem {
    fn encode(&self, e: &mut Enc) {
        self.clock.encode(e);
        self.next_req.encode(e);
        self.measure_start.encode(e);
        self.mcs.encode(e);
        self.cores.encode(e);
        self.tasks.encode(e);
        self.sims.encode(e);
        self.sched.encode(e);
        self.alloc.encode(e);
        self.inflight.encode(e);
        self.base.encode(e);
        self.sched_base_stats.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SavedSystem {
            clock: Snapshot::decode(d)?,
            next_req: Snapshot::decode(d)?,
            measure_start: Snapshot::decode(d)?,
            mcs: Snapshot::decode(d)?,
            cores: Snapshot::decode(d)?,
            tasks: Snapshot::decode(d)?,
            sims: Snapshot::decode(d)?,
            sched: Snapshot::decode(d)?,
            alloc: Snapshot::decode(d)?,
            inflight: Snapshot::decode(d)?,
            base: Snapshot::decode(d)?,
            sched_base_stats: Snapshot::decode(d)?,
        })
    }
}

/// Why a checkpoint image could not be accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The image does not start with [`MAGIC`].
    BadMagic,
    /// The image's format version is not supported.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the image bytes.
    ChecksumMismatch {
        /// Checksum stored in the image.
        stored: u64,
        /// Checksum recomputed over the image bytes.
        computed: u64,
    },
    /// The image was produced under a different `(config, mix)` pair.
    FingerprintMismatch {
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint stored in the image.
        stored: u64,
    },
    /// The payload failed to decode.
    Codec(CodecError),
    /// The decoded state was rejected by the target system.
    Import(String),
    /// Filesystem failure reading or writing the image, classified by
    /// operation, path, and cause.
    Io(VfsError),
}

impl CheckpointError {
    /// The underlying filesystem error, when this is an I/O failure.
    pub fn as_io(&self) -> Option<&VfsError> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a refsim checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (supported: {VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint corrupt: checksum {computed:#018x} != stored {stored:#018x}"
            ),
            CheckpointError::FingerprintMismatch { expected, stored } => write!(
                f,
                "checkpoint belongs to a different config/mix: fingerprint \
                 {stored:#018x} != expected {expected:#018x}"
            ),
            CheckpointError::Codec(e) => write!(f, "checkpoint payload: {e}"),
            CheckpointError::Import(why) => write!(f, "checkpoint rejected on import: {why}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Codec(e) => Some(e),
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// FNV-1a fingerprint of a `(config, mix)` pair, stored in every
/// checkpoint so images cannot be restored into a differently
/// configured system. Delegates to the run cache's canonical encoding
/// ([`crate::runcache::job_fingerprint`]): a stable, field-by-field
/// byte encoding rather than the `Debug` representation, so the
/// fingerprint survives field renames and `Debug`-format churn.
pub fn config_fingerprint(cfg: &SystemConfig, mix: &WorkloadMix) -> u64 {
    crate::runcache::job_fingerprint(cfg, mix)
}

/// A framed, checksummed checkpoint: fingerprint + [`SavedSystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the `(config, mix)` the state was captured under.
    pub fingerprint: u64,
    /// The captured dynamic state.
    pub state: SavedSystem,
}

impl Checkpoint {
    /// Serializes the checkpoint into the version-1 file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = codec::to_bytes(&self.state);
        let mut e = Enc::new();
        e.put_bytes(&MAGIC);
        e.put_u32(VERSION);
        e.put_u64(self.fingerprint);
        e.put_u64(payload.len() as u64);
        e.put_bytes(&payload);
        let mut bytes = e.into_bytes();
        let checksum = codec::fnv64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Parses and verifies a version-1 image.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on bad magic, unsupported version, checksum
    /// mismatch, or payload decode failure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::BadMagic);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        let computed = codec::fnv64(body);
        // Magic is checked before the checksum so that "not a checkpoint
        // at all" is reported as such rather than as corruption.
        let mut d = Dec::new(body);
        let magic = d.get_bytes(4).map_err(|_| CheckpointError::BadMagic)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = d.get_u32().map_err(CheckpointError::Codec)?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        if computed != stored {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        let fingerprint = d.get_u64()?;
        let n = d.get_u64()?;
        if n != d.remaining() as u64 {
            return Err(CheckpointError::Codec(CodecError::Invalid(format!(
                "payload length {n} != {} bytes present",
                d.remaining()
            ))));
        }
        let payload = d.get_bytes(n as usize)?;
        let state = codec::from_bytes(payload)?;
        Ok(Checkpoint { fingerprint, state })
    }

    /// Verifies that the checkpoint was captured under the expected
    /// `(config, mix)` fingerprint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::FingerprintMismatch`] when it was not.
    pub fn check_fingerprint(&self, expected: u64) -> Result<(), CheckpointError> {
        if self.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                expected,
                stored: self.fingerprint,
            });
        }
        Ok(())
    }

    /// Writes the image to `path` crash-safely via
    /// [`crate::vfs::write_atomic`]: the bytes land in a uniquely named
    /// `.tmp` sibling first and are renamed into place, so a crash
    /// mid-write can never leave a torn file at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_with(&StdVfs, path)
    }

    /// [`Checkpoint::save`] through an explicit filesystem.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save_with(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), CheckpointError> {
        vfs::write_atomic(vfs, path, &self.to_bytes()).map_err(CheckpointError::Io)
    }

    /// Reads and verifies an image from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on filesystem failure or any parse/verify
    /// failure of [`Checkpoint::from_bytes`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::load_with(&StdVfs, path)
    }

    /// [`Checkpoint::load`] through an explicit filesystem.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on filesystem failure or any parse/verify
    /// failure of [`Checkpoint::from_bytes`].
    pub fn load_with(vfs: &dyn Vfs, path: &Path) -> Result<Self, CheckpointError> {
        let bytes = vfs.read(path).map_err(CheckpointError::Io)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refsim_workloads::mix::by_name;

    fn tiny_state() -> SavedSystem {
        SavedSystem {
            clock: Ps::from_us(42),
            next_req: 7,
            measure_start: Ps::ZERO,
            mcs: Vec::new(),
            cores: Vec::new(),
            tasks: Vec::new(),
            sims: Vec::new(),
            sched: SavedScheduler {
                queues: Vec::new(),
                stats: SchedStats::default(),
            },
            alloc: SavedBankAlloc {
                buddy: refsim_os::buddy::SavedBuddy {
                    frames: 0,
                    free_frames: 0,
                    free_lists: Vec::new(),
                    alloc_map: Vec::new(),
                },
                per_bank_free: Vec::new(),
                stats: Default::default(),
            },
            inflight: Vec::new(),
            base: Vec::new(),
            sched_base_stats: SchedStats::default(),
        }
    }

    #[test]
    fn container_roundtrips() {
        let cp = Checkpoint {
            fingerprint: 0x1234_5678_9ABC_DEF0,
            state: tiny_state(),
        };
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("parse");
        assert_eq!(back, cp);
    }

    #[test]
    fn corruption_is_detected() {
        let cp = Checkpoint {
            fingerprint: 1,
            state: tiny_state(),
        };
        let mut bytes = cp.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let cp = Checkpoint {
            fingerprint: 1,
            state: tiny_state(),
        };
        let mut bytes = cp.to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        );

        // Version check happens before the checksum: patch both.
        let mut bytes = cp.to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncated_image_is_an_error() {
        let cp = Checkpoint {
            fingerprint: 1,
            state: tiny_state(),
        };
        let bytes = cp.to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 9]).is_err());
        assert!(Checkpoint::from_bytes(&bytes[..4]).is_err());
        assert!(Checkpoint::from_bytes(b"").is_err());
    }

    #[test]
    fn fingerprint_depends_on_config_and_mix() {
        let cfg = SystemConfig::table1();
        let mix5 = by_name("WL-5").unwrap();
        let mix4 = by_name("WL-4").unwrap();
        let f = config_fingerprint(&cfg, &mix5);
        assert_eq!(f, config_fingerprint(&cfg, &mix5), "must be stable");
        assert_ne!(f, config_fingerprint(&cfg, &mix4), "mix must matter");
        assert_ne!(
            f,
            config_fingerprint(&cfg.co_design(), &mix5),
            "config must matter"
        );
    }

    #[test]
    fn check_fingerprint_gates_restore() {
        let cp = Checkpoint {
            fingerprint: 0xAA,
            state: tiny_state(),
        };
        assert!(cp.check_fingerprint(0xAA).is_ok());
        assert!(matches!(
            cp.check_fingerprint(0xBB),
            Err(CheckpointError::FingerprintMismatch {
                expected: 0xBB,
                stored: 0xAA
            })
        ));
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let dir = std::env::temp_dir().join("refsim-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.rfsm");
        let cp = Checkpoint {
            fingerprint: 3,
            state: tiny_state(),
        };
        cp.save(&path).expect("save");
        let litter = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .count();
        assert_eq!(litter, 0, "tmp must be renamed away");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back, cp);
        std::fs::remove_file(&path).ok();
    }
}

//! Resilient sweep runner: crash-safe checkpointing, bounded retry, and
//! resumable manifests for multi-job experiment sweeps.
//!
//! [`run_many_resilient`] drives a batch of [`Job`]s across a worker
//! pool like [`crate::experiment::run_many_checked`], but each job is
//! steered through explicit span boundaries (see
//! [`crate::replay::span_boundaries`]) so it can periodically persist a
//! [`Checkpoint`]. A job that dies — panic, transient checkpoint I/O
//! fault — is retried with bounded exponential backoff, resuming from
//! its last on-disk checkpoint rather than from scratch; a job that
//! keeps dying is *quarantined* so the rest of the sweep completes.
//! Deterministic failures (invalid config, empty workload, OOM, DRAM
//! faults, watchdog trips) are never retried: re-running a
//! deterministic simulator reproduces them bit for bit.
//!
//! When a sweep directory is configured, a human-readable manifest
//! records per-job status (`pending`/`done`/`failed <why>`), finished
//! jobs' metrics are persisted, and a later invocation with the same
//! jobs picks up exactly where the previous one stopped — the
//! "kill -9 the sweep, rerun the command" recovery story.
//!
//! Determinism note: segmentation is part of the bit-identity contract.
//! `checkpoint_every: None` steers each job through exactly the
//! boundaries [`System::try_run`] uses, so this runner with default
//! options is bit-compatible with the plain checked sweep.
//!
//! # Deduplication and the run cache
//!
//! Identical `(config, mix)` cells among the pending jobs share one
//! execution: the first occurrence (the *leader*) runs, and its outcome
//! — success or typed error — fans out to every duplicate, preserving
//! output order and per-cell error semantics. Soundness rests on the
//! canonical fingerprint ([`crate::runcache::job_fingerprint`]) covering
//! *every* semantic knob, so equal fingerprints mean deterministic
//! duplicates by the replay-proof contract. Dedup is therefore always
//! on. The *persistent* cache ([`SweepOptions::cache`]) additionally
//! serves leaders from prior processes' results — except for cells
//! [`crate::runcache::bypass_reason`] names, which always execute.
//! With [`SweepOptions::verify_sampled`] set (the default), the first
//! cache hit of each sweep is re-executed and compared bit-for-bit
//! (metrics *and* final replay hash) against the stored entry, turning
//! every warm sweep into a standing audit of the cache's soundness.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use refsim_dram::time::Ps;

use crate::checkpoint::{config_fingerprint, Checkpoint};
use crate::codec::{from_bytes, to_bytes};
use crate::error::RefsimError;
use crate::experiment::Job;
use crate::metrics::RunMetrics;
use crate::replay::{span_boundaries, StateHashes};
use crate::runcache::{bypass_reason, CacheEntry, CacheStats, RunCache};
use crate::system::System;

/// Options for a resilient sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Directory for the manifest, per-job checkpoints, and persisted
    /// metrics. `None` disables all persistence (in-memory retry only).
    pub dir: Option<PathBuf>,
    /// Interval between mid-run checkpoints. `None` checkpoints only at
    /// the warm-up boundary and run end — the exact segmentation of
    /// [`System::try_run`], preserving bit-identity with plain sweeps.
    pub checkpoint_every: Option<Ps>,
    /// Additional attempts after the first failure of a retryable job.
    pub max_retries: u32,
    /// Base backoff slept before a retry; doubles per attempt, capped
    /// at one second.
    pub backoff: Duration,
    /// Test-only fault injection: panic a chosen job mid-run. Injection
    /// targets a job *index*; a duplicate cell deduped onto another
    /// leader never runs and so never fires its injection.
    pub inject: Option<PanicInjection>,
    /// Persistent content-addressed run cache. `None` (the default)
    /// disables persistence; in-process dedup is active regardless.
    pub cache: Option<RunCache>,
    /// Re-execute the first cache hit of the sweep and require the
    /// fresh run to reproduce the entry's metrics and replay hash
    /// bit-for-bit. On by default; a mismatch is counted in
    /// [`CacheStats::verify_failures`] and the fresh result wins.
    pub verify_sampled: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            dir: None,
            checkpoint_every: None,
            max_retries: 1,
            backoff: Duration::ZERO,
            inject: None,
            cache: None,
            verify_sampled: true,
        }
    }
}

/// Deterministic fault injection for testing the retry/resume path:
/// the chosen job panics after completing `after_spans` span
/// boundaries, on each of its first `attempts` attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicInjection {
    /// Index of the job to kill.
    pub job: usize,
    /// Number of attempts that die before one is allowed to finish.
    pub attempts: u32,
    /// Span boundaries the doomed attempt completes before panicking.
    pub after_spans: u64,
}

/// Outcome of a resilient sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-job results, in job order.
    pub results: Vec<Result<RunMetrics, RefsimError>>,
    /// Total retry attempts across all jobs.
    pub retries: u64,
    /// Jobs whose retryable failures exhausted the retry budget.
    pub quarantined: Vec<usize>,
    /// Attempts that resumed from an on-disk checkpoint.
    pub resumed: u64,
    /// Dedup and run-cache telemetry for this sweep.
    pub stats: CacheStats,
}

/// Whether a failed attempt is worth retrying. Only nondeterministic
/// failure modes qualify: everything else reproduces identically.
fn is_retryable(e: &RefsimError) -> bool {
    matches!(e, RefsimError::Panicked(_) | RefsimError::Checkpoint(_))
}

/// Best-effort recovery of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// ---- manifest ------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum JobStatus {
    Pending,
    Done,
    Failed(String),
}

#[derive(Debug)]
struct Manifest {
    fingerprints: Vec<u64>,
    status: Vec<JobStatus>,
}

impl Manifest {
    fn new(fingerprints: Vec<u64>) -> Self {
        let status = vec![JobStatus::Pending; fingerprints.len()];
        Manifest {
            fingerprints,
            status,
        }
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "refsim-sweep v1");
        let _ = writeln!(s, "jobs {}", self.fingerprints.len());
        for (i, (fp, st)) in self.fingerprints.iter().zip(&self.status).enumerate() {
            let line = match st {
                JobStatus::Pending => format!("job {i} {fp:016x} pending"),
                JobStatus::Done => format!("job {i} {fp:016x} done"),
                JobStatus::Failed(why) => {
                    format!("job {i} {fp:016x} failed {}", why.replace('\n', " "))
                }
            };
            let _ = writeln!(s, "{line}");
        }
        s
    }

    fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("refsim-sweep v1") {
            return Err("manifest header is not `refsim-sweep v1`".to_owned());
        }
        let n: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("jobs "))
            .and_then(|v| v.parse().ok())
            .ok_or("manifest is missing the job count")?;
        let mut m = Manifest::new(vec![0; n]);
        for (i, line) in lines.enumerate() {
            let rest = line
                .strip_prefix(&format!("job {i} "))
                .ok_or_else(|| format!("manifest line {i} is malformed: `{line}`"))?;
            let (fp, st) = rest
                .split_once(' ')
                .ok_or_else(|| format!("manifest line {i} is missing a status"))?;
            *m.fingerprints
                .get_mut(i)
                .ok_or_else(|| format!("manifest has more rows than its job count {n}"))? =
                u64::from_str_radix(fp, 16).map_err(|e| format!("bad fingerprint: {e}"))?;
            m.status[i] = match st.split_once(' ') {
                None if st == "pending" => JobStatus::Pending,
                None if st == "done" => JobStatus::Done,
                Some(("failed", why)) => JobStatus::Failed(why.to_owned()),
                _ => return Err(format!("unknown job status `{st}`")),
            };
        }
        if m.status.len() != n {
            return Err(format!(
                "manifest declares {n} jobs but lists {}",
                m.status.len()
            ));
        }
        Ok(m)
    }

    /// Atomically persists the manifest (tmp sibling + rename).
    fn store(&self, dir: &Path) -> Result<(), RefsimError> {
        let path = manifest_path(dir);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.render())
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| RefsimError::Checkpoint(format!("storing sweep manifest: {e}")))
    }
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("sweep.manifest")
}

fn ckpt_path(dir: &Path, job: usize) -> PathBuf {
    dir.join(format!("job-{job}.ckpt"))
}

fn metrics_path(dir: &Path, job: usize) -> PathBuf {
    dir.join(format!("job-{job}.metrics"))
}

// ---- per-attempt driver --------------------------------------------------

/// Everything one finished attempt yields.
struct AttemptOutcome {
    metrics: RunMetrics,
    /// The attempt resumed from an on-disk checkpoint.
    resumed: bool,
    /// Final replay state hash, computed only when `want_hash` (i.e.
    /// the result is destined for a cache entry or a verification).
    hash: Option<u64>,
    /// Wall-clock nanoseconds this attempt took.
    wall_nanos: u64,
}

/// Runs one attempt of `job`, checkpointing at each span boundary when a
/// sweep directory is configured, resuming from an existing checkpoint
/// when one is present and importable.
fn run_attempt(
    job: &Job,
    job_idx: usize,
    attempt: u32,
    opts: &SweepOptions,
    want_hash: bool,
) -> Result<AttemptOutcome, RefsimError> {
    let t0 = Instant::now();
    let cfg = &job.cfg;
    let boundaries = span_boundaries(cfg, opts.checkpoint_every);
    let mut resumed = false;
    let mut sys = None;
    if let Some(dir) = &opts.dir {
        // A stale, corrupt, or mismatched checkpoint must never poison a
        // retry — fall back to a fresh run instead.
        if let Ok(cp) = Checkpoint::load(&ckpt_path(dir, job_idx)) {
            if let Ok(s) = System::restore(cfg.clone(), &job.mix, &cp) {
                resumed = true;
                sys = Some(s);
            }
        }
    }
    let mut sys = match sys {
        Some(s) => s,
        None => {
            let mut s = System::try_new(cfg.clone(), &job.mix)?;
            if cfg.warmup == Ps::ZERO {
                s.begin_measure();
            }
            s
        }
    };
    for (s_idx, &b) in boundaries.iter().enumerate() {
        if b <= sys.now() {
            continue; // already covered by the restored checkpoint
        }
        sys.try_run_until(b)?;
        if b == cfg.warmup {
            sys.begin_measure();
        }
        if let Some(dir) = &opts.dir {
            sys.checkpoint(&job.mix)
                .save(&ckpt_path(dir, job_idx))
                .map_err(|e| RefsimError::Checkpoint(e.to_string()))?;
        }
        if let Some(inj) = &opts.inject {
            if inj.job == job_idx && attempt < inj.attempts && s_idx as u64 == inj.after_spans {
                panic!("injected sweep fault (job {job_idx}, attempt {attempt})");
            }
        }
    }
    sys.audit_retention();
    // Invariant violations become a typed per-job error row rather than
    // a crashed sweep; they are deterministic, so `is_retryable` keeps
    // them out of the retry loop.
    sys.finish_audit()?;
    let hash = want_hash.then(|| StateHashes::of(&sys.export_state()).combined());
    Ok(AttemptOutcome {
        metrics: sys.collect(),
        resumed,
        hash,
        wall_nanos: t0.elapsed().as_nanos() as u64,
    })
}

// ---- the runner ----------------------------------------------------------

/// Error-tolerant, crash-safe sweep: runs every job to a `Result` in job
/// order, retrying retryable failures from their last checkpoint with
/// bounded backoff and quarantining jobs that keep failing. With
/// `opts.dir` set, progress survives process death: rerun with the same
/// jobs and options to resume from the manifest.
///
/// # Errors
///
/// Fails only on sweep-level corruption: an existing manifest whose job
/// count or config fingerprints do not match `jobs`, or a manifest that
/// cannot be written. Per-job failures are *data* — they land in
/// [`SweepReport::results`], never abort the sweep.
pub fn run_many_resilient(
    jobs: &[Job],
    threads: usize,
    opts: &SweepOptions,
) -> Result<SweepReport, RefsimError> {
    let n = jobs.len();
    let fingerprints: Vec<u64> = jobs
        .iter()
        .map(|j| config_fingerprint(&j.cfg, &j.mix))
        .collect();

    let mut manifest = Manifest::new(fingerprints.clone());
    let mut results: Vec<Option<Result<RunMetrics, RefsimError>>> = (0..n).map(|_| None).collect();

    if let Some(dir) = &opts.dir {
        fs::create_dir_all(dir)
            .map_err(|e| RefsimError::Checkpoint(format!("creating sweep dir: {e}")))?;
        if let Ok(text) = fs::read_to_string(manifest_path(dir)) {
            let prior = Manifest::parse(&text)
                .map_err(|e| RefsimError::Checkpoint(format!("loading sweep manifest: {e}")))?;
            if prior.fingerprints != fingerprints {
                return Err(RefsimError::Checkpoint(
                    "sweep manifest does not match this job list; \
                     point --sweep-dir at a fresh directory"
                        .to_owned(),
                ));
            }
            for (i, st) in prior.status.iter().enumerate() {
                if *st == JobStatus::Done {
                    // Trust `done` only if the persisted metrics load.
                    if let Ok(m) = fs::read(metrics_path(dir, i))
                        .map_err(|e| e.to_string())
                        .and_then(|b| from_bytes::<RunMetrics>(&b).map_err(|e| e.to_string()))
                    {
                        manifest.status[i] = JobStatus::Done;
                        results[i] = Some(Ok(m));
                    }
                }
                // `failed` (and unreadable `done`) rows go back to
                // pending: a fresh invocation retries everything.
            }
        }
        manifest.store(dir)?;
    }

    let pending: Vec<usize> = (0..n).filter(|&i| results[i].is_none()).collect();

    // In-flight dedup: group pending cells by canonical fingerprint.
    // The first pending index of each group is its *leader* and the
    // only cell that executes; the group's outcome fans out to all.
    let mut leaders: Vec<usize> = Vec::new();
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in &pending {
        let g = groups.entry(fingerprints[i]).or_default();
        if g.is_empty() {
            leaders.push(i);
        }
        g.push(i);
    }

    let mut stats = CacheStats {
        requested: n as u64,
        deduped: (pending.len() - leaders.len()) as u64,
        ..CacheStats::default()
    };

    let results = Mutex::new(results);
    let manifest = Mutex::new(manifest);
    let cursor = AtomicUsize::new(0);
    let retries = AtomicU64::new(0);
    let resumed_count = AtomicU64::new(0);
    let quarantined = Mutex::new(Vec::new());
    let stats_mx = Mutex::new(&mut stats);
    // One sampled verification per sweep: the first hit claims it.
    let verify_claimed = AtomicBool::new(false);
    let workers = threads.clamp(1, leaders.len().max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                // Retry loop for one leader: returns the attempt result
                // (with hash/wall when `want_hash`) and whether the cell
                // exhausted its retry budget on a retryable failure.
                let run_to_completion =
                    |i: usize, want_hash: bool| -> (Result<AttemptOutcome, RefsimError>, bool) {
                        let mut attempt = 0;
                        loop {
                            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_attempt(&jobs[i], i, attempt, opts, want_hash)
                            }))
                            .unwrap_or_else(|payload| {
                                Err(RefsimError::Panicked(panic_message(payload.as_ref())))
                            });
                            match r {
                                Ok(out) => {
                                    if out.resumed {
                                        resumed_count.fetch_add(1, Ordering::Relaxed);
                                    }
                                    return (Ok(out), false);
                                }
                                Err(e) => {
                                    let retryable = is_retryable(&e);
                                    if !retryable || attempt >= opts.max_retries {
                                        return (Err(e), retryable);
                                    }
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    let backoff = opts
                                        .backoff
                                        .saturating_mul(1 << attempt.min(10))
                                        .min(Duration::from_secs(1));
                                    if !backoff.is_zero() {
                                        std::thread::sleep(backoff);
                                    }
                                    attempt += 1;
                                }
                            }
                        }
                    };
                let bump = |f: &dyn Fn(&mut CacheStats)| {
                    f(&mut stats_mx.lock().expect("poisoned"));
                };
                loop {
                    let p = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = leaders.get(p) else { break };
                    let fp = fingerprints[i];

                    // The persistent cache applies only to cacheable
                    // cells; audited / fault-injected / debug-knob runs
                    // must execute for real, every time.
                    let cache = match &opts.cache {
                        Some(c) => match bypass_reason(&jobs[i].cfg) {
                            None => Some(c),
                            Some(_) => {
                                bump(&|st| st.bypassed += 1);
                                None
                            }
                        },
                        None => None,
                    };

                    let mut outcome: Option<Result<RunMetrics, RefsimError>> = None;
                    let mut was_quarantined = false;
                    if let Some(cache) = cache {
                        if let Some((entry, sz)) = cache.load(fp) {
                            let verify = opts.verify_sampled
                                && !verify_claimed.swap(true, Ordering::Relaxed);
                            if verify {
                                // Sampled audit: re-run the cell and hold
                                // the entry to bit-identity on both the
                                // metrics and the final replay hash.
                                bump(&|st| st.executed += 1);
                                let (r, q) = run_to_completion(i, true);
                                was_quarantined = q;
                                outcome = Some(match r {
                                    Ok(out) => {
                                        let clean = out.metrics == entry.metrics
                                            && out.hash == Some(entry.replay_hash);
                                        if clean {
                                            bump(&|st| {
                                                st.hits += 1;
                                                st.verified += 1;
                                                st.bytes_read += sz;
                                            });
                                        } else {
                                            // The fresh run wins; the
                                            // stale entry is overwritten.
                                            bump(&|st| st.verify_failures += 1);
                                            store_entry(cache, fp, &out, &stats_mx);
                                        }
                                        Ok(out.metrics)
                                    }
                                    Err(e) => Err(e),
                                });
                            } else {
                                bump(&|st| {
                                    st.hits += 1;
                                    st.bytes_read += sz;
                                    st.saved_nanos += entry.wall_nanos;
                                });
                                outcome = Some(Ok(entry.metrics));
                            }
                        } else {
                            bump(&|st| st.misses += 1);
                        }
                    }
                    let outcome = match outcome {
                        Some(o) => o,
                        None => {
                            bump(&|st| st.executed += 1);
                            let (r, q) = run_to_completion(i, cache.is_some());
                            was_quarantined = q;
                            match r {
                                Ok(out) => {
                                    if let Some(cache) = cache {
                                        store_entry(cache, fp, &out, &stats_mx);
                                    }
                                    Ok(out.metrics)
                                }
                                Err(e) => Err(e),
                            }
                        }
                    };

                    // Fan the leader's outcome out to every cell of its
                    // group (the leader included), preserving per-cell
                    // manifest rows, metrics files, and error clones.
                    let group = &groups[&fp];
                    if let Some(dir) = &opts.dir {
                        let mut mf = manifest.lock().expect("poisoned");
                        for &j in group {
                            mf.status[j] = match &outcome {
                                Ok(m) => {
                                    // Persist metrics first so `done` is
                                    // never recorded without its payload.
                                    let ok = fs::write(metrics_path(dir, j), to_bytes(m)).is_ok();
                                    let _ = fs::remove_file(ckpt_path(dir, j));
                                    if ok {
                                        JobStatus::Done
                                    } else {
                                        JobStatus::Failed("metrics not persisted".to_owned())
                                    }
                                }
                                Err(e) => JobStatus::Failed(e.to_string()),
                            };
                        }
                        let _ = mf.store(dir);
                    }
                    if was_quarantined {
                        quarantined.lock().expect("poisoned").extend(group.iter());
                    }
                    let mut res = results.lock().expect("poisoned");
                    for &j in group {
                        res.as_mut_slice()[j] = Some(outcome.clone());
                    }
                }
            });
        }
    });

    let mut quarantined = quarantined.into_inner().expect("poisoned");
    quarantined.sort_unstable();
    let results = results
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect();
    Ok(SweepReport {
        results,
        retries: retries.into_inner(),
        quarantined,
        resumed: resumed_count.into_inner(),
        stats,
    })
}

/// Persists a freshly executed result as a cache entry, folding byte
/// counts into the sweep's stats. Store failures are non-fatal: the
/// result is already in hand, the cache just stays cold.
fn store_entry(
    cache: &RunCache,
    fingerprint: u64,
    out: &AttemptOutcome,
    stats_mx: &Mutex<&mut CacheStats>,
) {
    let Some(hash) = out.hash else { return };
    let entry = CacheEntry {
        fingerprint,
        replay_hash: hash,
        wall_nanos: out.wall_nanos,
        metrics: out.metrics.clone(),
    };
    if let Ok(written) = cache.store(&entry) {
        let mut st = stats_mx.lock().expect("poisoned");
        st.stores += 1;
        st.bytes_written += written;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use refsim_workloads::mix::WorkloadMix;
    use refsim_workloads::profiles::Benchmark;

    fn tiny_job(seed: u64) -> Job {
        let mut cfg = SystemConfig::table1().with_time_scale(512).with_seed(seed);
        cfg.warmup = cfg.trefw() / 8;
        cfg.measure = cfg.trefw() / 2;
        Job {
            cfg,
            mix: WorkloadMix::from_groups(
                "tiny",
                &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
                "M + L",
            ),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("refsim-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn manifest_roundtrips_and_rejects_garbage() {
        let mut m = Manifest::new(vec![0xdead_beef, 0x1234]);
        m.status[0] = JobStatus::Done;
        m.status[1] = JobStatus::Failed("watchdog: no progress".to_owned());
        let back = Manifest::parse(&m.render()).expect("roundtrip");
        assert_eq!(back.fingerprints, m.fingerprints);
        assert_eq!(back.status, m.status);
        assert!(Manifest::parse("not a manifest").is_err());
        assert!(Manifest::parse("refsim-sweep v1\njobs 2\njob 0 zz pending").is_err());
    }

    #[test]
    fn default_options_match_the_plain_checked_sweep() {
        let jobs = [tiny_job(1), tiny_job(2)];
        let plain = crate::experiment::run_many_checked(&jobs, 2);
        let resilient = run_many_resilient(&jobs, 2, &SweepOptions::default()).expect("sweep");
        assert_eq!(resilient.retries, 0);
        for (a, b) in plain.iter().zip(&resilient.results) {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "resilient sweep must be bit-compatible with the plain sweep"
            );
        }
    }

    #[test]
    fn injected_panic_resumes_from_checkpoint_bit_identical() {
        let jobs = [tiny_job(3), tiny_job(4)];
        let every = jobs[0].cfg.effective_timeslice() * 8;

        // Reference: same segmentation, no faults, no persistence dir.
        let clean = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                checkpoint_every: Some(every),
                ..SweepOptions::default()
            },
        )
        .expect("clean sweep");

        // Faulted: job 0 dies once mid-run, retries, resumes from disk.
        let dir = tmp_dir("resume");
        let faulted = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                checkpoint_every: Some(every),
                max_retries: 1,
                backoff: Duration::ZERO,
                inject: Some(PanicInjection {
                    job: 0,
                    attempts: 1,
                    after_spans: 2,
                }),
                ..SweepOptions::default()
            },
        )
        .expect("faulted sweep");
        assert_eq!(
            faulted.retries, 1,
            "the injected panic must trigger a retry"
        );
        assert_eq!(
            faulted.resumed, 1,
            "the retry must resume from the checkpoint"
        );
        assert!(faulted.quarantined.is_empty());
        for (i, (a, b)) in clean.results.iter().zip(&faulted.results).enumerate() {
            let (a, b) = (a.as_ref().expect("clean"), b.as_ref().expect("faulted"));
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "job {i}: resumed run must be bit-identical to the uninterrupted run"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_failures_are_quarantined_and_the_sweep_completes() {
        let jobs = [tiny_job(5), tiny_job(6)];
        let report = run_many_resilient(
            &jobs,
            2,
            &SweepOptions {
                checkpoint_every: Some(jobs[0].cfg.effective_timeslice() * 8),
                max_retries: 1,
                inject: Some(PanicInjection {
                    job: 0,
                    attempts: 5, // outlives the retry budget
                    after_spans: 1,
                }),
                ..SweepOptions::default()
            },
        )
        .expect("sweep");
        assert_eq!(report.quarantined, vec![0]);
        assert!(
            matches!(
                report.results[0],
                Err(RefsimError::Panicked(ref m)) if m.contains("injected")
            ),
            "unexpected job-0 result: {:?}",
            report.results[0]
        );
        assert!(report.results[1].is_ok(), "healthy jobs must still finish");
    }

    #[test]
    fn deterministic_errors_fail_fast_without_retry() {
        let mut bad = tiny_job(7);
        bad.cfg.measure = Ps::ZERO; // rejected by SystemConfig::validate
        let report = run_many_resilient(&[bad], 1, &SweepOptions::default()).expect("sweep");
        assert_eq!(report.retries, 0);
        assert!(matches!(
            report.results[0],
            Err(RefsimError::InvalidConfig(_))
        ));
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn second_invocation_resumes_from_manifest() {
        let jobs = [tiny_job(8), tiny_job(9)];
        let every = jobs[0].cfg.effective_timeslice() * 8;
        let dir = tmp_dir("manifest");

        // First invocation: job 1 keeps dying and ends up `failed`.
        let first = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                checkpoint_every: Some(every),
                max_retries: 0,
                inject: Some(PanicInjection {
                    job: 1,
                    attempts: 9,
                    after_spans: 1,
                }),
                ..SweepOptions::default()
            },
        )
        .expect("first invocation");
        assert!(first.results[0].is_ok());
        assert!(first.results[1].is_err());

        // Second invocation: no faults. Job 0 is loaded from its
        // persisted metrics (not re-run); job 1 resumes from its
        // checkpoint and must match a never-interrupted run.
        let second = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                checkpoint_every: Some(every),
                ..SweepOptions::default()
            },
        )
        .expect("second invocation");
        assert!(second.resumed >= 1, "job 1 must resume from its checkpoint");
        let clean = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                checkpoint_every: Some(every),
                ..SweepOptions::default()
            },
        )
        .expect("clean reference");
        for (i, (a, b)) in clean.results.iter().zip(&second.results).enumerate() {
            let (a, b) = (a.as_ref().expect("clean"), b.as_ref().expect("second"));
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "job {i}");
        }
        // Job 0's persisted metrics must also round-trip exactly.
        assert_eq!(
            format!("{:?}", first.results[0].as_ref().expect("first")),
            format!("{:?}", second.results[0].as_ref().expect("second")),
        );

        // A different job list must be rejected, not silently mixed in.
        let err = run_many_resilient(
            &[tiny_job(10)],
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                ..SweepOptions::default()
            },
        )
        .expect_err("mismatched manifest");
        assert!(matches!(err, RefsimError::Checkpoint(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Resilient sweep runner: crash-safe checkpointing, bounded retry, and
//! resumable manifests for multi-job experiment sweeps.
//!
//! [`run_many_resilient`] drives a batch of [`Job`]s across a worker
//! pool like [`crate::experiment::run_many_checked`], but each job is
//! steered through explicit span boundaries (see
//! [`crate::replay::span_boundaries`]) so it can periodically persist a
//! [`Checkpoint`]. A job that dies — panic, transient checkpoint I/O
//! fault — is retried with bounded exponential backoff, resuming from
//! its last on-disk checkpoint rather than from scratch; a job that
//! keeps dying is *quarantined* so the rest of the sweep completes.
//! Deterministic failures (invalid config, empty workload, OOM, DRAM
//! faults, watchdog trips) are never retried: re-running a
//! deterministic simulator reproduces them bit for bit.
//!
//! When a sweep directory is configured, a human-readable manifest
//! records per-job status (`pending`/`done`/`failed <why>`), finished
//! jobs' metrics are persisted, and a later invocation with the same
//! jobs picks up exactly where the previous one stopped — the
//! "kill -9 the sweep, rerun the command" recovery story.
//!
//! Determinism note: segmentation is part of the bit-identity contract.
//! `checkpoint_every: None` steers each job through exactly the
//! boundaries [`System::try_run`] uses, so this runner with default
//! options is bit-compatible with the plain checked sweep.
//!
//! # Deduplication and the run cache
//!
//! Identical `(config, mix)` cells among the pending jobs share one
//! execution: the first occurrence (the *leader*) runs, and its outcome
//! — success or typed error — fans out to every duplicate, preserving
//! output order and per-cell error semantics. Soundness rests on the
//! canonical fingerprint ([`crate::runcache::job_fingerprint`]) covering
//! *every* semantic knob, so equal fingerprints mean deterministic
//! duplicates by the replay-proof contract. Dedup is therefore always
//! on. The *persistent* cache ([`SweepOptions::cache`]) additionally
//! serves leaders from prior processes' results — except for cells
//! [`crate::runcache::bypass_reason`] names, which always execute.
//! With [`SweepOptions::verify_sampled`] set (the default), the first
//! cache hit of each sweep is re-executed and compared bit-for-bit
//! (metrics *and* final replay hash) against the stored entry, turning
//! every warm sweep into a standing audit of the cache's soundness.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use refsim_dram::time::Ps;

use crate::checkpoint::{config_fingerprint, Checkpoint, CheckpointError};
use crate::codec::{self, to_bytes, Dec, Enc};
use crate::error::RefsimError;
use crate::executor::{self, default_threads, ExecItem, ExecutorOptions, ExecutorStats, Verdict};
use crate::experiment::Job;
use crate::metrics::RunMetrics;
use crate::replay::{span_boundaries, StateHashes};
use crate::runcache::{bypass_reason, CacheEntry, CacheLookup, CacheStats, RunCache};
use crate::system::System;
use crate::vfs::{self, std_vfs, Vfs, VfsErrorKind};

/// Options for a resilient sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Directory for the manifest, per-job checkpoints, and persisted
    /// metrics. `None` disables all persistence (in-memory retry only).
    pub dir: Option<PathBuf>,
    /// Interval between mid-run checkpoints. `None` checkpoints only at
    /// the warm-up boundary and run end — the exact segmentation of
    /// [`System::try_run`], preserving bit-identity with plain sweeps.
    pub checkpoint_every: Option<Ps>,
    /// Additional attempts after the first failure of a retryable job.
    pub max_retries: u32,
    /// Base backoff slept before a retry; doubles per attempt, capped
    /// at one second.
    pub backoff: Duration,
    /// Test-only fault injection: panic a chosen job mid-run. Injection
    /// targets a job *index*; a duplicate cell deduped onto another
    /// leader never runs and so never fires its injection.
    pub inject: Option<PanicInjection>,
    /// Persistent content-addressed run cache. `None` (the default)
    /// disables persistence; in-process dedup is active regardless.
    pub cache: Option<RunCache>,
    /// Re-execute the first cache hit of the sweep and require the
    /// fresh run to reproduce the entry's metrics and replay hash
    /// bit-for-bit. On by default; a mismatch is counted in
    /// [`CacheStats::verify_failures`] and the fresh result wins.
    pub verify_sampled: bool,
    /// Filesystem every persistence surface of the sweep goes through.
    /// Defaults to the real filesystem; the crash-matrix harness swaps
    /// in a [`crate::vfs::FaultVfs`].
    pub vfs: Arc<dyn Vfs>,
    /// Supervision and isolation policy for the work-stealing executor
    /// that runs the deduplicated leader cells (deadlines, straggler
    /// escalation, worker quarantine, chaos injection).
    pub executor: ExecutorOptions,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            dir: None,
            checkpoint_every: None,
            max_retries: 1,
            backoff: Duration::ZERO,
            inject: None,
            cache: None,
            verify_sampled: true,
            vfs: std_vfs(),
            executor: ExecutorOptions::default(),
        }
    }
}

/// Deterministic fault injection for testing the retry/resume path:
/// the chosen job panics after completing `after_spans` span
/// boundaries, on each of its first `attempts` attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicInjection {
    /// Index of the job to kill.
    pub job: usize,
    /// Number of attempts that die before one is allowed to finish.
    pub attempts: u32,
    /// Span boundaries the doomed attempt completes before panicking.
    pub after_spans: u64,
}

/// Outcome of a resilient sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-job results, in job order.
    pub results: Vec<Result<RunMetrics, RefsimError>>,
    /// Total retry attempts across all jobs.
    pub retries: u64,
    /// Jobs whose retryable failures exhausted the retry budget.
    pub quarantined: Vec<usize>,
    /// Attempts that resumed from an on-disk checkpoint.
    pub resumed: u64,
    /// Dedup and run-cache telemetry for this sweep.
    pub stats: CacheStats,
    /// Damaged on-disk files (checkpoints, metrics frames, the
    /// manifest) detected via typed errors and renamed to
    /// reproducer-grade `*.quarantine` siblings instead of being
    /// trusted or deleted.
    pub files_quarantined: u64,
    /// Mid-run checkpoint saves that failed (ENOSPC, torn write). A
    /// failed save is a lost safety net, not a lost result: the attempt
    /// keeps simulating and the previous checkpoint stays in place.
    pub ckpt_save_failures: u64,
    /// The sweep manifest was torn or corrupt and progress was rebuilt
    /// from the surviving checksummed per-job metrics frames.
    pub manifest_rebuilt: bool,
    /// Scheduling telemetry from the work-stealing executor (steals,
    /// requeues, deadline escalations, quarantined workers, tail-cell
    /// histogram).
    pub executor: ExecutorStats,
}

/// Degradation counters shared between the sweep driver and the
/// per-attempt code running on worker threads.
#[derive(Debug, Default)]
struct SweepTelemetry {
    files_quarantined: AtomicU64,
    ckpt_save_failures: AtomicU64,
}

/// Whether a failed attempt is worth retrying. Only nondeterministic
/// failure modes qualify: everything else reproduces identically.
/// Transient I/O interruptions qualify; ENOSPC and crash-point
/// failures do not (a full disk stays full, a dead disk stays dead).
fn is_retryable(e: &RefsimError) -> bool {
    match e {
        RefsimError::Panicked(_) | RefsimError::Checkpoint(_) => true,
        // Supervisor cancellation abandons a straggling attempt so its
        // worker can serve healthy cells; the re-run (from checkpoint
        // when one exists) produces the same bits later.
        RefsimError::Cancelled { .. } => true,
        RefsimError::Io(io) => io.is_transient(),
        _ => false,
    }
}

/// Best-effort recovery of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// ---- manifest ------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum JobStatus {
    Pending,
    Done,
    Failed(String),
}

#[derive(Debug)]
struct Manifest {
    fingerprints: Vec<u64>,
    status: Vec<JobStatus>,
}

impl Manifest {
    fn new(fingerprints: Vec<u64>) -> Self {
        let status = vec![JobStatus::Pending; fingerprints.len()];
        Manifest {
            fingerprints,
            status,
        }
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "refsim-sweep v1");
        let _ = writeln!(s, "jobs {}", self.fingerprints.len());
        for (i, (fp, st)) in self.fingerprints.iter().zip(&self.status).enumerate() {
            let line = match st {
                JobStatus::Pending => format!("job {i} {fp:016x} pending"),
                JobStatus::Done => format!("job {i} {fp:016x} done"),
                JobStatus::Failed(why) => {
                    format!("job {i} {fp:016x} failed {}", why.replace('\n', " "))
                }
            };
            let _ = writeln!(s, "{line}");
        }
        // Trailer: FNV-1a over everything above it. A truncated manifest
        // would otherwise parse "successfully" with zeroed rows.
        let sum = codec::fnv64(s.as_bytes());
        let _ = writeln!(s, "checksum {sum:016x}");
        s
    }

    pub(crate) fn parse(text: &str) -> Result<Self, String> {
        let trimmed = text
            .strip_suffix('\n')
            .ok_or("manifest is truncated (no trailing newline)")?;
        let (body, last) = match trimmed.rfind('\n') {
            Some(p) => (&text[..p + 1], &trimmed[p + 1..]),
            None => return Err("manifest is missing its checksum trailer".to_owned()),
        };
        let sum = last
            .strip_prefix("checksum ")
            .ok_or("manifest is missing its checksum trailer")?;
        let sum =
            u64::from_str_radix(sum, 16).map_err(|e| format!("bad manifest checksum: {e}"))?;
        if codec::fnv64(body.as_bytes()) != sum {
            return Err("manifest checksum mismatch (torn or corrupt)".to_owned());
        }
        let mut lines = body.lines();
        if lines.next() != Some("refsim-sweep v1") {
            return Err("manifest header is not `refsim-sweep v1`".to_owned());
        }
        let n: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("jobs "))
            .and_then(|v| v.parse().ok())
            .ok_or("manifest is missing the job count")?;
        let mut m = Manifest::new(vec![0; n]);
        for (i, line) in lines.enumerate() {
            let rest = line
                .strip_prefix(&format!("job {i} "))
                .ok_or_else(|| format!("manifest line {i} is malformed: `{line}`"))?;
            let (fp, st) = rest
                .split_once(' ')
                .ok_or_else(|| format!("manifest line {i} is missing a status"))?;
            *m.fingerprints
                .get_mut(i)
                .ok_or_else(|| format!("manifest has more rows than its job count {n}"))? =
                u64::from_str_radix(fp, 16).map_err(|e| format!("bad fingerprint: {e}"))?;
            m.status[i] = match st.split_once(' ') {
                None if st == "pending" => JobStatus::Pending,
                None if st == "done" => JobStatus::Done,
                Some(("failed", why)) => JobStatus::Failed(why.to_owned()),
                _ => return Err(format!("unknown job status `{st}`")),
            };
        }
        if m.status.len() != n {
            return Err(format!(
                "manifest declares {n} jobs but lists {}",
                m.status.len()
            ));
        }
        Ok(m)
    }

    /// Atomically persists the manifest ([`crate::vfs::write_atomic`]).
    fn store(&self, vfs: &dyn Vfs, dir: &Path) -> Result<(), RefsimError> {
        vfs::write_atomic(vfs, &manifest_path(dir), self.render().as_bytes())
            .map_err(RefsimError::Io)
    }
}

/// Validates manifest text end to end (checksum trailer, header, rows)
/// without exposing the manifest type — the crash-matrix scan's check
/// that an on-disk manifest is consumable.
pub(crate) fn validate_manifest(text: &str) -> Result<(), String> {
    Manifest::parse(text).map(|_| ())
}

pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("sweep.manifest")
}

pub(crate) fn ckpt_path(dir: &Path, job: usize) -> PathBuf {
    dir.join(format!("job-{job}.ckpt"))
}

pub(crate) fn metrics_path(dir: &Path, job: usize) -> PathBuf {
    dir.join(format!("job-{job}.metrics"))
}

/// Reproducer-grade quarantine name: the damaged file's own name plus
/// `.quarantine`, in place, so the bytes survive for triage.
pub(crate) fn quarantine_path(p: &Path) -> PathBuf {
    let mut os = p.as_os_str().to_owned();
    os.push(".quarantine");
    PathBuf::from(os)
}

// ---- per-job metrics frames ---------------------------------------------
//
// Raw codec bytes would decode a bit-flipped RunMetrics into different
// numbers without complaint; the frame adds a magic, a version, the
// job's canonical fingerprint (so a frame can never be attributed to
// the wrong cell, even after a manifest rebuild), and an FNV-1a
// checksum over everything.

/// Magic opening every per-job metrics frame.
pub(crate) const METRICS_MAGIC: [u8; 4] = *b"RFMM";
/// Current metrics-frame format version.
pub(crate) const METRICS_VERSION: u32 = 1;

pub(crate) fn encode_metrics(fingerprint: u64, m: &RunMetrics) -> Vec<u8> {
    let payload = to_bytes(m);
    let mut e = Enc::new();
    e.put_bytes(&METRICS_MAGIC);
    e.put_u32(METRICS_VERSION);
    e.put_u64(fingerprint);
    e.put_u64(payload.len() as u64);
    e.put_bytes(&payload);
    let mut bytes = e.into_bytes();
    bytes.extend_from_slice(&codec::fnv64(&bytes).to_le_bytes());
    bytes
}

/// Parses a metrics frame; any damage (truncation, bitrot, version
/// skew) reads as `None`, never as different numbers.
pub(crate) fn decode_metrics(bytes: &[u8]) -> Option<(u64, RunMetrics)> {
    if bytes.len() < 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if codec::fnv64(body) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut d = Dec::new(body);
    if d.get_bytes(4).ok()? != METRICS_MAGIC {
        return None;
    }
    if d.get_u32().ok()? != METRICS_VERSION {
        return None;
    }
    let fingerprint = d.get_u64().ok()?;
    let n = d.get_u64().ok()?;
    if n != d.remaining() as u64 {
        return None;
    }
    let metrics = codec::from_bytes::<RunMetrics>(d.get_bytes(n as usize).ok()?).ok()?;
    Some((fingerprint, metrics))
}

/// Loads job `job`'s persisted metrics, requiring the frame's embedded
/// fingerprint to match `expected_fp`. Damaged or misattributed frames
/// are quarantined and read as absent.
fn load_metrics(
    vfs: &dyn Vfs,
    dir: &Path,
    job: usize,
    expected_fp: u64,
    tel: &SweepTelemetry,
) -> Option<RunMetrics> {
    let path = metrics_path(dir, job);
    let bytes = match vfs.read(&path) {
        Ok(b) => b,
        Err(_) => return None, // absent or unreadable: the job re-runs
    };
    match decode_metrics(&bytes) {
        Some((fp, m)) if fp == expected_fp => Some(m),
        _ => {
            let _ = vfs.rename(&path, &quarantine_path(&path));
            tel.files_quarantined.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

// ---- per-attempt driver --------------------------------------------------

/// Everything one finished attempt yields.
struct AttemptOutcome {
    metrics: RunMetrics,
    /// The attempt resumed from an on-disk checkpoint.
    resumed: bool,
    /// Final replay state hash, computed only when `want_hash` (i.e.
    /// the result is destined for a cache entry or a verification).
    hash: Option<u64>,
    /// Wall-clock nanoseconds this attempt took.
    wall_nanos: u64,
}

/// Runs one attempt of `job`, checkpointing at each span boundary when a
/// sweep directory is configured, resuming from an existing checkpoint
/// when one is present and importable. `cancel`, when supplied, is
/// installed as the system's cooperative-cancellation hook (see
/// [`System::set_cancel_hook`]) so the executor's supervisor can
/// reclaim a straggling attempt.
fn run_attempt(
    job: &Job,
    job_idx: usize,
    attempt: u32,
    opts: &SweepOptions,
    want_hash: bool,
    tel: &SweepTelemetry,
    cancel: Option<&Arc<AtomicBool>>,
) -> Result<AttemptOutcome, RefsimError> {
    let t0 = Instant::now();
    let cfg = &job.cfg;
    let vfs = &*opts.vfs;
    let boundaries = span_boundaries(cfg, opts.checkpoint_every);
    let mut resumed = false;
    let mut sys = None;
    if let Some(dir) = &opts.dir {
        // A stale, corrupt, or mismatched checkpoint must never poison a
        // retry — quarantine it and fall back to a fresh run. Only a
        // crashed (frozen) disk aborts the attempt: there is no point
        // simulating when nothing can be persisted or delivered.
        let path = ckpt_path(dir, job_idx);
        match Checkpoint::load_with(vfs, &path) {
            Ok(cp) => match System::restore(cfg.clone(), &job.mix, &cp) {
                Ok(s) => {
                    resumed = true;
                    sys = Some(s);
                }
                Err(_) => {
                    let _ = vfs.rename(&path, &quarantine_path(&path));
                    tel.files_quarantined.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(CheckpointError::Io(e)) => {
                if e.kind == VfsErrorKind::Crashed {
                    return Err(RefsimError::Io(e));
                }
                // Not found: a cold start. Transient or other read
                // failures: also a cold start — strictly more work,
                // never wrong.
            }
            Err(_) => {
                // Torn or corrupt image: typed detection, quarantine,
                // fresh run.
                let _ = vfs.rename(&path, &quarantine_path(&path));
                tel.files_quarantined.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut sys = match sys {
        Some(s) => s,
        None => {
            let mut s = System::try_new(cfg.clone(), &job.mix)?;
            if cfg.warmup == Ps::ZERO {
                s.begin_measure();
            }
            s
        }
    };
    // Installed after both construction paths, so a checkpoint-restored
    // attempt is just as reclaimable as a cold one.
    if let Some(flag) = cancel {
        sys.set_cancel_hook(Arc::clone(flag));
    }
    for (s_idx, &b) in boundaries.iter().enumerate() {
        if b <= sys.now() {
            continue; // already covered by the restored checkpoint
        }
        sys.try_run_until(b)?;
        if b == cfg.warmup {
            sys.begin_measure();
        }
        if let Some(dir) = &opts.dir {
            if let Err(e) = sys
                .checkpoint(&job.mix)
                .save_with(vfs, &ckpt_path(dir, job_idx))
            {
                match e {
                    CheckpointError::Io(io) if io.kind == VfsErrorKind::Crashed => {
                        return Err(RefsimError::Io(io));
                    }
                    // A failed mid-run checkpoint (ENOSPC, torn write)
                    // is a lost safety net, not a lost result: the
                    // previous checkpoint stays valid on disk and the
                    // attempt keeps simulating.
                    _ => {
                        tel.ckpt_save_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if let Some(inj) = &opts.inject {
            if inj.job == job_idx && attempt < inj.attempts && s_idx as u64 == inj.after_spans {
                panic!("injected sweep fault (job {job_idx}, attempt {attempt})");
            }
        }
    }
    sys.audit_retention();
    // Invariant violations become a typed per-job error row rather than
    // a crashed sweep; they are deterministic, so `is_retryable` keeps
    // them out of the retry loop.
    sys.finish_audit()?;
    let hash = want_hash.then(|| StateHashes::of(&sys.export_state()).combined());
    Ok(AttemptOutcome {
        metrics: sys.collect(),
        resumed,
        hash,
        wall_nanos: t0.elapsed().as_nanos() as u64,
    })
}

// ---- the runner ----------------------------------------------------------

/// Error-tolerant, crash-safe sweep: runs every job to a `Result` in job
/// order, retrying retryable failures from their last checkpoint with
/// bounded backoff and quarantining jobs that keep failing. With
/// `opts.dir` set, progress survives process death: rerun with the same
/// jobs and options to resume from the manifest.
///
/// # Errors
///
/// Fails only on sweep-level corruption: an existing manifest whose job
/// count or config fingerprints do not match `jobs`, or a manifest that
/// cannot be written. Per-job failures are *data* — they land in
/// [`SweepReport::results`], never abort the sweep.
pub fn run_many_resilient(
    jobs: &[Job],
    threads: usize,
    opts: &SweepOptions,
) -> Result<SweepReport, RefsimError> {
    let n = jobs.len();
    let fingerprints: Vec<u64> = jobs
        .iter()
        .map(|j| config_fingerprint(&j.cfg, &j.mix))
        .collect();

    let vfs = &*opts.vfs;
    let tel = SweepTelemetry::default();
    let mut manifest_rebuilt = false;
    let mut manifest = Manifest::new(fingerprints.clone());
    let mut results: Vec<Option<Result<RunMetrics, RefsimError>>> = (0..n).map(|_| None).collect();

    if let Some(dir) = &opts.dir {
        vfs.create_dir_all(dir).map_err(RefsimError::Io)?;
        // Sweep away temp litter from a previous crashed invocation:
        // under the atomic-publish convention every `*.tmp` file is
        // garbage by definition.
        if let Ok(entries) = vfs.read_dir(dir) {
            for p in entries {
                if p.extension().is_some_and(|e| e == "tmp") {
                    let _ = vfs.remove(&p);
                }
            }
        }
        match vfs::read_to_string(vfs, &manifest_path(dir)) {
            Ok(text) => match Manifest::parse(&text) {
                Ok(prior) => {
                    if prior.fingerprints != fingerprints {
                        return Err(RefsimError::Checkpoint(
                            "sweep manifest does not match this job list; \
                             point --sweep-dir at a fresh directory"
                                .to_owned(),
                        ));
                    }
                }
                Err(_) => {
                    // Torn or corrupt manifest: quarantine it and
                    // rebuild progress from the surviving checksummed
                    // per-job metrics frames below.
                    let path = manifest_path(dir);
                    let _ = vfs.rename(&path, &quarantine_path(&path));
                    tel.files_quarantined.fetch_add(1, Ordering::Relaxed);
                    manifest_rebuilt = true;
                }
            },
            Err(e) if e.kind == VfsErrorKind::NotFound => {}
            Err(e) if e.kind == VfsErrorKind::Crashed => return Err(RefsimError::Io(e)),
            Err(e)
                if matches!(&e.kind, VfsErrorKind::Other(msg)
                    if msg.starts_with("invalid utf-8")) =>
            {
                // The read succeeded but bitrot broke the text encoding
                // itself — the same torn-manifest class as a checksum
                // failure, just caught one layer earlier: quarantine
                // the bytes and rebuild from the metrics frames.
                let path = manifest_path(dir);
                let _ = vfs.rename(&path, &quarantine_path(&path));
                tel.files_quarantined.fetch_add(1, Ordering::Relaxed);
                manifest_rebuilt = true;
            }
            Err(_) => {
                // Unreadable manifest (transient read fault): start from
                // the metrics frames, which carry their own fingerprints
                // and checksums.
            }
        }
        // Absorb every finished job whose framed metrics survive. The
        // frame — not the manifest row — is the authority: its checksum
        // and embedded fingerprint make misattribution impossible, so
        // this also recovers jobs that finished after the manifest's
        // last successful store.
        for i in 0..n {
            if results[i].is_none() {
                if let Some(m) = load_metrics(vfs, dir, i, fingerprints[i], &tel) {
                    manifest.status[i] = JobStatus::Done;
                    results[i] = Some(Ok(m));
                }
            }
        }
        manifest.store(vfs, dir)?;
    }

    let pending: Vec<usize> = (0..n).filter(|&i| results[i].is_none()).collect();

    // In-flight dedup: group pending cells by canonical fingerprint.
    // The first pending index of each group is its *leader* and the
    // only cell that executes; the group's outcome fans out to all.
    let mut leaders: Vec<usize> = Vec::new();
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in &pending {
        let g = groups.entry(fingerprints[i]).or_default();
        if g.is_empty() {
            leaders.push(i);
        }
        g.push(i);
    }

    let mut stats = CacheStats {
        requested: n as u64,
        deduped: (pending.len() - leaders.len()) as u64,
        ..CacheStats::default()
    };

    let results = Mutex::new(results);
    let manifest = Mutex::new(manifest);
    let retries = AtomicU64::new(0);
    let resumed_count = AtomicU64::new(0);
    let quarantined = Mutex::new(Vec::new());
    let stats_mx = Mutex::new(&mut stats);
    // One sampled verification per sweep: the first hit claims it.
    let verify_claimed = AtomicBool::new(false);
    let workers = if threads == 0 {
        default_threads()
    } else {
        threads
    };

    // Cost-model estimates for dispatch ordering: a cached wall from a
    // prior process, read without lookup side effects. Bypassed cells
    // and cold caches have no estimate and run in submission order.
    let items: Vec<ExecItem> = leaders
        .iter()
        .enumerate()
        .map(|(p, &i)| ExecItem {
            id: p,
            estimate_nanos: opts.cache.as_ref().and_then(|c| {
                bypass_reason(&jobs[i].cfg)
                    .is_none()
                    .then(|| c.peek_wall_nanos(fingerprints[i]))
                    .flatten()
            }),
        })
        .collect();

    // Per-leader state that must survive executor requeues: the sweep —
    // not the executor — owns the retry budget (so `PanicInjection`
    // attempt counting is unchanged), and the cache decision is made
    // exactly once per leader no matter how many dispatches it takes.
    let attempts: Vec<AtomicU32> = leaders.iter().map(|_| AtomicU32::new(0)).collect();
    let prepared: Vec<OnceLock<Prepared>> = leaders.iter().map(|_| OnceLock::new()).collect();

    let bump = |f: &dyn Fn(&mut CacheStats)| {
        f(&mut stats_mx.lock().expect("poisoned"));
    };

    // The cache decision for one leader: serve a hit outright, or
    // execute (optionally verifying against the held entry). The
    // persistent cache applies only to cacheable cells; audited /
    // fault-injected / debug-knob runs must execute for real.
    let prepare = |i: usize, fp: u64| -> Prepared {
        let cache = match &opts.cache {
            Some(c) => match bypass_reason(&jobs[i].cfg) {
                None => Some(c),
                Some(_) => {
                    bump(&|st| st.bypassed += 1);
                    None
                }
            },
            None => None,
        };
        let Some(cache) = cache else {
            bump(&|st| st.executed += 1);
            return Prepared::Execute {
                verify: None,
                verify_sz: 0,
                use_cache: false,
            };
        };
        let lookup = cache.lookup(fp);
        match &lookup {
            CacheLookup::Hit(_, _) => {}
            CacheLookup::Absent => bump(&|st| {
                st.misses += 1;
                st.misses_absent += 1;
            }),
            CacheLookup::Corrupt => bump(&|st| {
                st.misses += 1;
                st.misses_corrupt += 1;
            }),
            CacheLookup::Io(_) => bump(&|st| {
                st.misses += 1;
                st.misses_io += 1;
            }),
        }
        if let CacheLookup::Hit(entry, sz) = lookup {
            if opts.verify_sampled && !verify_claimed.swap(true, Ordering::Relaxed) {
                // Sampled audit: re-run the cell and hold the entry to
                // bit-identity on metrics and the final replay hash.
                bump(&|st| st.executed += 1);
                Prepared::Execute {
                    verify: Some(entry),
                    verify_sz: sz,
                    use_cache: true,
                }
            } else {
                bump(&|st| {
                    st.hits += 1;
                    st.bytes_read += sz;
                    st.saved_nanos += entry.wall_nanos;
                });
                Prepared::Serve(Box::new(entry.metrics))
            }
        } else {
            bump(&|st| st.executed += 1);
            Prepared::Execute {
                verify: None,
                verify_sz: 0,
                use_cache: true,
            }
        }
    };

    // Fans one leader's terminal outcome out to every cell of its group
    // (the leader included), preserving per-cell manifest rows, metrics
    // files, and error clones.
    let finish = |fp: u64, outcome: Result<RunMetrics, RefsimError>, cell_quarantined: bool| {
        let group = &groups[&fp];
        if let Some(dir) = &opts.dir {
            let mut mf = manifest.lock().expect("poisoned");
            for &j in group {
                mf.status[j] = match &outcome {
                    Ok(m) => {
                        // Persist metrics first so `done` is never
                        // recorded without its payload.
                        let frame = encode_metrics(fp, m);
                        let ok = vfs::write_atomic(vfs, &metrics_path(dir, j), &frame).is_ok();
                        let _ = vfs.remove(&ckpt_path(dir, j));
                        if ok {
                            JobStatus::Done
                        } else {
                            JobStatus::Failed("metrics not persisted".to_owned())
                        }
                    }
                    Err(e) => JobStatus::Failed(e.to_string()),
                };
            }
            let _ = mf.store(vfs, dir);
        }
        if cell_quarantined {
            quarantined.lock().expect("poisoned").extend(group.iter());
        }
        let mut res = results.lock().expect("poisoned");
        for &j in group {
            res.as_mut_slice()[j] = Some(outcome.clone());
        }
    };

    // One executor dispatch of one leader: a single attempt, with the
    // verdict routing retries (requeue, never a sleeping worker),
    // supervisor cancellations (requeue outside the retry budget), and
    // terminal outcomes (fan-out).
    let exec_run = |p: usize, ctx: &executor::ExecCtx<'_>| -> Verdict {
        let i = leaders[p];
        let fp = fingerprints[i];
        let prep = prepared[p].get_or_init(|| prepare(i, fp));
        let (verify, verify_sz, use_cache) = match prep {
            Prepared::Serve(m) => {
                finish(fp, Ok((**m).clone()), false);
                return Verdict::Done { poisoned: false };
            }
            Prepared::Execute {
                verify,
                verify_sz,
                use_cache,
            } => (verify, *verify_sz, *use_cache),
        };
        let attempt = attempts[p].load(Ordering::Relaxed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // A chaos plan's crash-looping job *class* panics inside the
            // sweep's own guard, so it burns real attempt budget and
            // terminates as a typed error + quarantined cell — the
            // executor-side worker faults never touch that budget.
            if let Some(plan) = &opts.executor.fault_plan {
                if plan.crashes_job(i) {
                    panic!("injected crash-loop (job {i}, attempt {attempt})");
                }
            }
            run_attempt(
                &jobs[i],
                i,
                attempt,
                opts,
                use_cache,
                &tel,
                Some(ctx.cancel),
            )
        }))
        .unwrap_or_else(|payload| Err(RefsimError::Panicked(panic_message(payload.as_ref()))));
        match r {
            Ok(out) => {
                if out.resumed {
                    resumed_count.fetch_add(1, Ordering::Relaxed);
                }
                let outcome = if let Some(entry) = verify {
                    let clean = out.metrics == entry.metrics && out.hash == Some(entry.replay_hash);
                    if clean {
                        bump(&|st| {
                            st.hits += 1;
                            st.verified += 1;
                            st.bytes_read += verify_sz;
                        });
                    } else {
                        // The fresh run wins; the stale entry is
                        // overwritten.
                        bump(&|st| st.verify_failures += 1);
                        if let Some(cache) = &opts.cache {
                            store_entry(cache, fp, &out, &stats_mx);
                        }
                    }
                    Ok(out.metrics)
                } else {
                    if use_cache {
                        if let Some(cache) = &opts.cache {
                            store_entry(cache, fp, &out, &stats_mx);
                        }
                    }
                    Ok(out.metrics)
                };
                finish(fp, outcome, false);
                Verdict::Done { poisoned: false }
            }
            Err(RefsimError::Cancelled { .. }) => {
                // A reclaimed straggler re-runs (from its checkpoint
                // when one exists) without consuming the retry budget;
                // the executor doubles its deadline and bounds how many
                // cancellations one cell can absorb.
                Verdict::Requeue {
                    backoff: Duration::ZERO,
                    poisoned: false,
                    cancelled: true,
                }
            }
            Err(e) => {
                let poisoned = matches!(e, RefsimError::Panicked(_));
                let retryable = is_retryable(&e);
                if retryable && attempt < opts.max_retries {
                    retries.fetch_add(1, Ordering::Relaxed);
                    attempts[p].fetch_add(1, Ordering::Relaxed);
                    // Exponential backoff as before — but requeued, so
                    // the worker serves healthy cells while this one
                    // waits out its delay.
                    let backoff = opts
                        .backoff
                        .saturating_mul(1 << attempt.min(10))
                        .min(Duration::from_secs(1));
                    Verdict::Requeue {
                        backoff,
                        poisoned,
                        cancelled: false,
                    }
                } else {
                    finish(fp, Err(e), retryable);
                    Verdict::Done { poisoned }
                }
            }
        }
    };

    let exec_stats = executor::execute(&items, workers, &opts.executor, exec_run);

    let mut quarantined = quarantined.into_inner().expect("poisoned");
    quarantined.sort_unstable();
    let results = results
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect();
    Ok(SweepReport {
        results,
        retries: retries.into_inner(),
        quarantined,
        resumed: resumed_count.into_inner(),
        stats,
        files_quarantined: tel.files_quarantined.into_inner(),
        ckpt_save_failures: tel.ckpt_save_failures.into_inner(),
        manifest_rebuilt,
        executor: exec_stats,
    })
}

/// The once-per-leader cache decision, cached across executor requeues
/// so a retried or cancelled dispatch never re-probes (or re-counts)
/// the cache.
#[derive(Debug)]
enum Prepared {
    /// Serve the cached metrics without executing.
    Serve(Box<RunMetrics>),
    /// Execute the cell.
    Execute {
        /// Sampled-audit entry the fresh run must reproduce bit-for-bit.
        verify: Option<Box<CacheEntry>>,
        /// On-disk size of the verify entry (for `bytes_read`).
        verify_sz: u64,
        /// Hash the result and store it back into the persistent cache.
        use_cache: bool,
    },
}

/// Persists a freshly executed result as a cache entry, folding byte
/// counts into the sweep's stats. Store failures are non-fatal but
/// counted: the result is already in hand, the cache just stays cold.
fn store_entry(
    cache: &RunCache,
    fingerprint: u64,
    out: &AttemptOutcome,
    stats_mx: &Mutex<&mut CacheStats>,
) {
    let Some(hash) = out.hash else { return };
    let entry = CacheEntry {
        fingerprint,
        replay_hash: hash,
        wall_nanos: out.wall_nanos,
        metrics: out.metrics.clone(),
    };
    let mut st = stats_mx.lock().expect("poisoned");
    match cache.store(&entry) {
        Ok(written) => {
            st.stores += 1;
            st.bytes_written += written;
        }
        Err(_) => st.store_failures += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use refsim_workloads::mix::WorkloadMix;
    use refsim_workloads::profiles::Benchmark;
    use std::fs;

    fn tiny_job(seed: u64) -> Job {
        let mut cfg = SystemConfig::table1().with_time_scale(512).with_seed(seed);
        cfg.warmup = cfg.trefw() / 8;
        cfg.measure = cfg.trefw() / 2;
        Job {
            cfg,
            mix: WorkloadMix::from_groups(
                "tiny",
                &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
                "M + L",
            ),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("refsim-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn manifest_roundtrips_and_rejects_garbage() {
        let mut m = Manifest::new(vec![0xdead_beef, 0x1234]);
        m.status[0] = JobStatus::Done;
        m.status[1] = JobStatus::Failed("watchdog: no progress".to_owned());
        let back = Manifest::parse(&m.render()).expect("roundtrip");
        assert_eq!(back.fingerprints, m.fingerprints);
        assert_eq!(back.status, m.status);
        assert!(Manifest::parse("not a manifest").is_err());
        assert!(Manifest::parse("refsim-sweep v1\njobs 2\njob 0 zz pending").is_err());
    }

    #[test]
    fn default_options_match_the_plain_checked_sweep() {
        let jobs = [tiny_job(1), tiny_job(2)];
        let plain = crate::experiment::run_many_checked(&jobs, 2);
        let resilient = run_many_resilient(&jobs, 2, &SweepOptions::default()).expect("sweep");
        assert_eq!(resilient.retries, 0);
        for (a, b) in plain.iter().zip(&resilient.results) {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "resilient sweep must be bit-compatible with the plain sweep"
            );
        }
    }

    #[test]
    fn injected_panic_resumes_from_checkpoint_bit_identical() {
        let jobs = [tiny_job(3), tiny_job(4)];
        let every = jobs[0].cfg.effective_timeslice() * 8;

        // Reference: same segmentation, no faults, no persistence dir.
        let clean = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                checkpoint_every: Some(every),
                ..SweepOptions::default()
            },
        )
        .expect("clean sweep");

        // Faulted: job 0 dies once mid-run, retries, resumes from disk.
        let dir = tmp_dir("resume");
        let faulted = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                checkpoint_every: Some(every),
                max_retries: 1,
                backoff: Duration::ZERO,
                inject: Some(PanicInjection {
                    job: 0,
                    attempts: 1,
                    after_spans: 2,
                }),
                ..SweepOptions::default()
            },
        )
        .expect("faulted sweep");
        assert_eq!(
            faulted.retries, 1,
            "the injected panic must trigger a retry"
        );
        assert_eq!(
            faulted.resumed, 1,
            "the retry must resume from the checkpoint"
        );
        assert!(faulted.quarantined.is_empty());
        for (i, (a, b)) in clean.results.iter().zip(&faulted.results).enumerate() {
            let (a, b) = (a.as_ref().expect("clean"), b.as_ref().expect("faulted"));
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "job {i}: resumed run must be bit-identical to the uninterrupted run"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_failures_are_quarantined_and_the_sweep_completes() {
        let jobs = [tiny_job(5), tiny_job(6)];
        let report = run_many_resilient(
            &jobs,
            2,
            &SweepOptions {
                checkpoint_every: Some(jobs[0].cfg.effective_timeslice() * 8),
                max_retries: 1,
                inject: Some(PanicInjection {
                    job: 0,
                    attempts: 5, // outlives the retry budget
                    after_spans: 1,
                }),
                ..SweepOptions::default()
            },
        )
        .expect("sweep");
        assert_eq!(report.quarantined, vec![0]);
        assert!(
            matches!(
                report.results[0],
                Err(RefsimError::Panicked(ref m)) if m.contains("injected")
            ),
            "unexpected job-0 result: {:?}",
            report.results[0]
        );
        assert!(report.results[1].is_ok(), "healthy jobs must still finish");
    }

    #[test]
    fn deterministic_errors_fail_fast_without_retry() {
        let mut bad = tiny_job(7);
        bad.cfg.measure = Ps::ZERO; // rejected by SystemConfig::validate
        let report = run_many_resilient(&[bad], 1, &SweepOptions::default()).expect("sweep");
        assert_eq!(report.retries, 0);
        assert!(matches!(
            report.results[0],
            Err(RefsimError::InvalidConfig(_))
        ));
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn second_invocation_resumes_from_manifest() {
        let jobs = [tiny_job(8), tiny_job(9)];
        let every = jobs[0].cfg.effective_timeslice() * 8;
        let dir = tmp_dir("manifest");

        // First invocation: job 1 keeps dying and ends up `failed`.
        let first = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                checkpoint_every: Some(every),
                max_retries: 0,
                inject: Some(PanicInjection {
                    job: 1,
                    attempts: 9,
                    after_spans: 1,
                }),
                ..SweepOptions::default()
            },
        )
        .expect("first invocation");
        assert!(first.results[0].is_ok());
        assert!(first.results[1].is_err());

        // Second invocation: no faults. Job 0 is loaded from its
        // persisted metrics (not re-run); job 1 resumes from its
        // checkpoint and must match a never-interrupted run.
        let second = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                checkpoint_every: Some(every),
                ..SweepOptions::default()
            },
        )
        .expect("second invocation");
        assert!(second.resumed >= 1, "job 1 must resume from its checkpoint");
        let clean = run_many_resilient(
            &jobs,
            1,
            &SweepOptions {
                checkpoint_every: Some(every),
                ..SweepOptions::default()
            },
        )
        .expect("clean reference");
        for (i, (a, b)) in clean.results.iter().zip(&second.results).enumerate() {
            let (a, b) = (a.as_ref().expect("clean"), b.as_ref().expect("second"));
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "job {i}");
        }
        // Job 0's persisted metrics must also round-trip exactly.
        assert_eq!(
            format!("{:?}", first.results[0].as_ref().expect("first")),
            format!("{:?}", second.results[0].as_ref().expect("second")),
        );

        // A different job list must be rejected, not silently mixed in.
        let err = run_many_resilient(
            &[tiny_job(10)],
            1,
            &SweepOptions {
                dir: Some(dir.clone()),
                ..SweepOptions::default()
            },
        )
        .expect_err("mismatched manifest");
        assert!(matches!(err, RefsimError::Checkpoint(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}

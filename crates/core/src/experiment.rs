//! Experiment harness: named builders that regenerate every results
//! table and figure of the paper's evaluation (§6). Each builder returns
//! [`Table`]s whose rows mirror the corresponding figure's series.
//!
//! All builders execute their sweeps through [`run_jobs`], which routes
//! through the resilient runner (in-flight dedup always on, persistent
//! [`RunCache`] when [`ExpOptions::cache`] is set) and accumulates
//! [`CacheStats`] into [`ExpOptions::telemetry`]. When
//! [`ExpOptions::pool`] carries a [`RunPool`], builders instead
//! participate in a two-phase pipeline: a *collect* pass registers every
//! job (cross-figure dedup by canonical fingerprint), one shared
//! execution runs the unique cells, and a *render* pass re-invokes the
//! builders against the shared result map.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, Retention};
use refsim_os::bank_alloc::{BankAwareAllocator, BankVector};
use refsim_os::partition::PartitionPlan;
use refsim_os::sched::SchedPolicy;
use refsim_workloads::mix::{table2, WorkloadMix};
use refsim_workloads::profiles::Benchmark;

use crate::config::{EngineKind, SystemConfig};
use crate::error::RefsimError;
use crate::executor::ExecutorStats;
use crate::faults::FaultPlan;
use crate::metrics::{gmean_finite, RunMetrics};
use crate::report::Table;
use crate::runcache::{job_fingerprint, CacheStats, RunCache};
use crate::sweep::{run_many_resilient, SweepOptions};

/// A refresh-mitigation scheme as compared in the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Ideal: refresh disabled (Figure 3/4 reference).
    NoRefresh,
    /// DDR3 all-bank refresh — the normalization baseline.
    AllBank,
    /// LPDDR per-bank round-robin refresh.
    PerBank,
    /// The full co-design: sequential per-bank refresh + soft
    /// partitioning + refresh-aware scheduling.
    CoDesign,
    /// Out-of-order per-bank refresh (Chang et al.).
    OooPerBank,
    /// Adaptive Refresh (Mukundan et al.).
    Adaptive,
    /// Elastic Refresh (Stuecheli et al.), §7's idle-period scheduling.
    Elastic,
    /// DDR4 fine-granularity refresh at a fixed mode.
    Fgr(FgrMode),
    /// No refresh with each task confined to `k` banks per rank
    /// (Figure 4's BLP-vs-tRFC study).
    ConfinedNoRefresh(u32),
}

impl Scheme {
    /// Label used in table headers.
    pub fn label(self) -> String {
        match self {
            Scheme::NoRefresh => "no-refresh".into(),
            Scheme::AllBank => "all-bank".into(),
            Scheme::PerBank => "per-bank".into(),
            Scheme::CoDesign => "co-design".into(),
            Scheme::OooPerBank => "ooo-per-bank".into(),
            Scheme::Adaptive => "adaptive(AR)".into(),
            Scheme::Elastic => "elastic".into(),
            Scheme::Fgr(m) => format!("ddr4-{m}"),
            Scheme::ConfinedNoRefresh(k) => format!("{k}-banks+no-tRFC"),
        }
    }

    /// Applies the scheme to a base configuration.
    pub fn apply(self, base: &SystemConfig) -> SystemConfig {
        let cfg = base.clone();
        match self {
            Scheme::NoRefresh => cfg.with_refresh(RefreshPolicyKind::NoRefresh),
            Scheme::AllBank => cfg.with_refresh(RefreshPolicyKind::AllBank),
            Scheme::PerBank => cfg.with_refresh(RefreshPolicyKind::PerBankRoundRobin),
            Scheme::CoDesign => cfg.co_design(),
            Scheme::OooPerBank => cfg.with_refresh(RefreshPolicyKind::OooPerBank),
            Scheme::Adaptive => cfg.with_refresh(RefreshPolicyKind::Adaptive),
            Scheme::Elastic => cfg.with_refresh(RefreshPolicyKind::Elastic),
            Scheme::Fgr(m) => cfg.with_refresh(RefreshPolicyKind::Fgr(m)),
            Scheme::ConfinedNoRefresh(k) => cfg
                .with_refresh(RefreshPolicyKind::NoRefresh)
                .with_partition(PartitionPlan::Confine { banks_per_task: k })
                .with_sched(SchedPolicy::Cfs),
        }
    }
}

/// Options shared by all experiment builders.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Time-scale divisor (see [`crate::config::DEFAULT_TIME_SCALE`]).
    pub time_scale: u32,
    /// Warm-up length in retention windows.
    pub warm_windows: u32,
    /// Measured length in retention windows.
    pub measure_windows: u32,
    /// Workload mixes to evaluate (Table 2 by default).
    pub workloads: Vec<WorkloadMix>,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for independent runs.
    pub threads: usize,
    /// Advancement engine for every job ([`EngineKind::EventSkip`] by
    /// default; figures are engine-invariant — pinned by the
    /// engine-equivalence suite — so this knob exists for differential
    /// A/B sweeps and for timing the engines against each other).
    pub engine: EngineKind,
    /// Persistent run cache every sweep consults. `None` by default so
    /// unit tests and library callers stay hermetic; the bench CLI
    /// resolves `REFSIM_CACHE_DIR` / `--cache-dir` / `--no-cache` into
    /// this field.
    pub cache: Option<RunCache>,
    /// Cross-figure execution pool for the unified pipeline. `None`
    /// (the default) makes every builder execute its own sweep.
    pub pool: Option<Arc<RunPool>>,
    /// Accumulated dedup/cache telemetry across every sweep these
    /// options drove.
    pub telemetry: Telemetry,
}

/// Shared, cloneable accumulator of [`CacheStats`] and
/// [`ExecutorStats`] across sweeps.
#[derive(Clone, Default)]
pub struct Telemetry(Arc<Mutex<(CacheStats, ExecutorStats)>>);

impl Telemetry {
    /// Folds one sweep's cache stats into the running total.
    pub fn add(&self, stats: &CacheStats) {
        self.0.lock().expect("poisoned").0.merge(stats);
    }

    /// Folds one sweep's executor stats into the running total.
    pub fn add_exec(&self, stats: &ExecutorStats) {
        self.0.lock().expect("poisoned").1.merge(stats);
    }

    /// A copy of the current cache totals.
    pub fn snapshot(&self) -> CacheStats {
        self.0.lock().expect("poisoned").0
    }

    /// A copy of the current executor totals.
    pub fn exec_snapshot(&self) -> ExecutorStats {
        self.0.lock().expect("poisoned").1.clone()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Telemetry")
            .field(&self.snapshot())
            .field(&self.exec_snapshot())
            .finish()
    }
}

impl ExpOptions {
    /// Full-fidelity defaults: all ten Table 2 mixes, two measured
    /// retention windows at the standard time scale.
    pub fn full() -> Self {
        ExpOptions {
            time_scale: crate::config::DEFAULT_TIME_SCALE,
            warm_windows: 1,
            measure_windows: 2,
            workloads: table2(),
            seed: 0x5EED,
            threads: crate::executor::default_threads(),
            engine: EngineKind::default(),
            cache: None,
            pool: None,
            telemetry: Telemetry::default(),
        }
    }

    /// Reduced-cost variant for smoke runs: four representative mixes
    /// (H, L, M, H+L), one measured window, coarser time scale.
    pub fn quick() -> Self {
        let keep = ["WL-1", "WL-4", "WL-5", "WL-8"];
        ExpOptions {
            time_scale: 128,
            warm_windows: 1,
            measure_windows: 1,
            workloads: table2()
                .into_iter()
                .filter(|m| keep.contains(&m.name.as_str()))
                .collect(),
            ..Self::full()
        }
    }

    /// The baseline configuration these options imply.
    pub fn base_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::table1()
            .with_time_scale(self.time_scale)
            .with_engine(self.engine);
        cfg.seed = self.seed;
        cfg.warmup = cfg.trefw() * u64::from(self.warm_windows);
        cfg.measure = cfg.trefw() * u64::from(self.measure_windows);
        cfg
    }
}

/// One simulation job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Configuration to run.
    pub cfg: SystemConfig,
    /// Workload to run.
    pub mix: WorkloadMix,
}

/// Runs jobs on a thread pool, preserving order.
///
/// # Panics
///
/// Panics on the first failed job. Sweeps that must survive individual
/// failures use [`run_many_checked`] instead.
pub fn run_many(jobs: &[Job], threads: usize) -> Vec<RunMetrics> {
    run_many_checked(jobs, threads)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("job {i} failed: {e}")))
        .collect()
}

/// Error-tolerant [`run_many`]: every job produces a `Result`, in job
/// order. A bad configuration, a simulation fault, or even a panicking
/// worker yields an `Err` for *that job only* — the rest of the sweep
/// completes, and builders turn the error into an error row.
///
/// This is a thin front over [`crate::sweep::run_many_resilient`] with
/// default options: panicked jobs get one blind retry, deterministic
/// failures fail fast, and nothing touches disk. Sweeps that need
/// crash-safe resume call the resilient runner directly with a sweep
/// directory.
pub fn run_many_checked(jobs: &[Job], threads: usize) -> Vec<Result<RunMetrics, RefsimError>> {
    crate::sweep::run_many_resilient(jobs, threads, &crate::sweep::SweepOptions::default())
        .expect("default sweep options never touch a manifest")
        .results
}

/// Sweep options an [`ExpOptions`] implies: default resilience plus its
/// persistent cache.
fn sweep_options(opts: &ExpOptions) -> SweepOptions {
    SweepOptions {
        cache: opts.cache.clone(),
        ..SweepOptions::default()
    }
}

/// The execution front every builder routes through: runs `jobs` under
/// the options' cache and telemetry — or, when [`ExpOptions::pool`] is
/// set, defers to the pool's collect/serve protocol.
pub fn run_jobs(opts: &ExpOptions, jobs: &[Job]) -> Vec<Result<RunMetrics, RefsimError>> {
    if let Some(pool) = &opts.pool {
        return pool.run(opts, jobs);
    }
    let report = run_many_resilient(jobs, opts.threads, &sweep_options(opts))
        .expect("default sweep options never touch a manifest");
    opts.telemetry.add(&report.stats);
    opts.telemetry.add_exec(&report.executor);
    report.results
}

/// [`run_jobs`] for builders that treat a failed run as fatal
/// ([`run_many`] semantics).
///
/// # Panics
///
/// Panics on the first failed job.
fn run_jobs_unwrap(opts: &ExpOptions, jobs: &[Job]) -> Vec<RunMetrics> {
    run_jobs(opts, jobs)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("job {i} failed: {e}")))
        .collect()
}

/// Zero-valued placeholder metrics the pool hands out during its
/// collect pass. Every downstream aggregate is safe on them: harmonic /
/// arithmetic means of an empty task list are 0, `gmean_finite` filters
/// non-positive speedups, and latency averages come out 0 — and the
/// collect pass's rendered output is discarded anyway.
fn placeholder_metrics() -> RunMetrics {
    RunMetrics {
        tasks: Vec::new(),
        sim_time: Ps::ZERO,
        controller: Default::default(),
        sched: Default::default(),
        cpu_period: Ps(1),
        dram_period: Ps(1),
    }
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Collect phase (true) registers jobs; serve phase (false) answers
    /// from `results`.
    collecting: bool,
    /// Unique jobs, in first-seen order.
    jobs: Vec<Job>,
    /// Canonical fingerprint → index into `jobs`.
    index: HashMap<u64, usize>,
    /// Fingerprint → executed outcome.
    results: HashMap<u64, Result<RunMetrics, RefsimError>>,
    /// Result cells requested during the collect phase (before dedup).
    requested: u64,
}

/// Cross-figure shared execution pool (the unified figure pipeline).
///
/// Protocol: build every figure once with the pool installed in
/// [`ExpOptions::pool`] (the *collect* pass — jobs are registered,
/// placeholder metrics returned, output discarded), call
/// [`RunPool::execute`] to run the deduplicated union of all jobs on
/// one thread pool, then build every figure again (the *render* pass —
/// cells are served from the shared result map).
#[derive(Debug)]
pub struct RunPool {
    inner: Mutex<PoolInner>,
}

impl Default for RunPool {
    fn default() -> Self {
        Self::new()
    }
}

impl RunPool {
    /// A fresh pool in its collect phase.
    pub fn new() -> Self {
        RunPool {
            inner: Mutex::new(PoolInner {
                collecting: true,
                ..PoolInner::default()
            }),
        }
    }

    /// Number of unique cells registered so far.
    pub fn unique_jobs(&self) -> usize {
        self.inner.lock().expect("poisoned").jobs.len()
    }

    /// Builder entry point (via [`run_jobs`]): registers `jobs` during
    /// the collect phase, serves their results during the render phase.
    fn run(&self, opts: &ExpOptions, jobs: &[Job]) -> Vec<Result<RunMetrics, RefsimError>> {
        let collecting = {
            let mut inner = self.inner.lock().expect("poisoned");
            if inner.collecting {
                inner.requested += jobs.len() as u64;
                for job in jobs {
                    let fp = job_fingerprint(&job.cfg, &job.mix);
                    if !inner.index.contains_key(&fp) {
                        let at = inner.jobs.len();
                        inner.jobs.push(job.clone());
                        inner.index.insert(fp, at);
                    }
                }
            }
            inner.collecting
        };
        if collecting {
            return jobs.iter().map(|_| Ok(placeholder_metrics())).collect();
        }
        jobs.iter()
            .map(|job| {
                let fp = job_fingerprint(&job.cfg, &job.mix);
                let served = self
                    .inner
                    .lock()
                    .expect("poisoned")
                    .results
                    .get(&fp)
                    .cloned();
                served.unwrap_or_else(|| {
                    // A cell the collect pass never saw (a builder whose
                    // job list is not a pure function of its options).
                    // Run it inline rather than failing the figure.
                    let report =
                        run_many_resilient(std::slice::from_ref(job), 1, &sweep_options(opts))
                            .expect("default sweep options never touch a manifest");
                    opts.telemetry.add(&report.stats);
                    opts.telemetry.add_exec(&report.executor);
                    let r = report.results.into_iter().next().expect("one job in");
                    self.inner
                        .lock()
                        .expect("poisoned")
                        .results
                        .insert(fp, r.clone());
                    r
                })
            })
            .collect()
    }

    /// Ends the collect phase: executes the deduplicated union of every
    /// registered job on one thread pool (consulting `opts.cache`), and
    /// switches the pool to serving. Telemetry is credited with the
    /// *requested* cell count, so the dedup factor reflects cross-figure
    /// sharing, not just intra-sweep sharing.
    pub fn execute(&self, opts: &ExpOptions) {
        let (jobs, requested) = {
            let mut inner = self.inner.lock().expect("poisoned");
            inner.collecting = false;
            (std::mem::take(&mut inner.jobs), inner.requested)
        };
        let report = run_many_resilient(&jobs, opts.threads, &sweep_options(opts))
            .expect("default sweep options never touch a manifest");
        let mut stats = report.stats;
        stats.requested = requested;
        stats.deduped = requested.saturating_sub(jobs.len() as u64);
        opts.telemetry.add(&stats);
        opts.telemetry.add_exec(&report.executor);
        let mut inner = self.inner.lock().expect("poisoned");
        for (job, r) in jobs.iter().zip(report.results) {
            inner.results.insert(job_fingerprint(&job.cfg, &job.mix), r);
        }
    }
}

/// Runs `scheme × workload` and returns harmonic-mean-IPC speedups
/// normalized to `baseline`, as `speedups[scheme][workload]`, plus the
/// raw metrics in the same layout.
///
/// Failed runs become `None` metrics and `NaN` speedups (rendered as
/// `error` cells by [`Table::fmt_f`]); runs rejected by the invariant
/// sanitizer become `-inf` speedups (rendered as `violated` — the
/// simulation finished but its results cannot be trusted). One bad run
/// never aborts the sweep.
fn run_schemes(
    base: &SystemConfig,
    schemes: &[Scheme],
    baseline: Scheme,
    opts: &ExpOptions,
) -> (Vec<Vec<f64>>, Vec<Vec<Option<RunMetrics>>>) {
    let mut jobs = Vec::new();
    let mut all = schemes.to_vec();
    if !all.contains(&baseline) {
        all.push(baseline);
    }
    for s in &all {
        for m in &opts.workloads {
            jobs.push(Job {
                cfg: s.apply(base),
                mix: m.clone(),
            });
        }
    }
    let metrics = run_jobs(opts, &jobs);
    let w = opts.workloads.len();
    let base_idx = all.iter().position(|s| *s == baseline).expect("added");
    let speedups = metrics
        .chunks(w)
        .take(schemes.len())
        .map(|runs| {
            runs.iter()
                .zip(&metrics[base_idx * w..base_idx * w + w])
                .map(|(r, b)| speedup_cell(r, b))
                .collect()
        })
        .collect();
    let by_scheme: Vec<Vec<Option<RunMetrics>>> = metrics
        .chunks(w)
        .map(|c| c.iter().map(|r| r.as_ref().ok().cloned()).collect())
        .collect();
    (speedups, by_scheme)
}

/// Speedup of run `r` over baseline `b` as a table cell value: `NaN`
/// marks a crashed/errored run, `-inf` marks one the invariant
/// sanitizer rejected. Both are skipped by [`gmean_finite`], so means
/// stay meaningful either way.
fn speedup_cell(r: &Result<RunMetrics, RefsimError>, b: &Result<RunMetrics, RefsimError>) -> f64 {
    match (r, b) {
        (Ok(r), Ok(b)) => r.speedup_over(b),
        (Err(RefsimError::InvariantViolation(_)), _) => f64::NEG_INFINITY,
        _ => f64::NAN,
    }
}

/// Status cell for a chunk of per-workload results: `ok`, or the first
/// failure — `violated: ...` for sanitizer rejections (the run finished
/// but broke an invariant), `error: ...` for everything else (the run
/// crashed or could not start).
fn status_cell(chunk: &[Result<RunMetrics, RefsimError>]) -> String {
    match chunk.iter().find_map(|r| r.as_ref().err()) {
        None => "ok".to_owned(),
        Some(e @ RefsimError::InvariantViolation(_)) => format!("violated: {e}"),
        Some(e) => format!("error: {e}"),
    }
}

/// **Figure 10**: IPC improvement of per-bank refresh and the co-design
/// over all-bank refresh, per workload, for 16/24/32 Gb devices.
/// Headline (32 Gb averages): co-design ≈ +16.2% over all-bank and
/// ≈ +6.3% over per-bank.
pub fn figure10(opts: &ExpOptions) -> Vec<Table> {
    let schemes = [Scheme::PerBank, Scheme::CoDesign];
    Density::EVALUATED
        .iter()
        .map(|&d| {
            let base = opts.base_config().with_density(d);
            let (speedups, _) = run_schemes(&base, &schemes, Scheme::AllBank, opts);
            let mut t = Table::new(
                format!("Figure 10 ({d}): IPC normalized to all-bank refresh"),
                ["workload", "all-bank", "per-bank", "co-design"],
            );
            for (i, m) in opts.workloads.iter().enumerate() {
                t.push([
                    m.name.clone(),
                    Table::fmt_f(1.0),
                    Table::fmt_f(speedups[0][i]),
                    Table::fmt_f(speedups[1][i]),
                ]);
            }
            t.push([
                "gmean".to_owned(),
                Table::fmt_f(1.0),
                Table::fmt_opt_f(gmean_finite(speedups[0].iter().copied())),
                Table::fmt_opt_f(gmean_finite(speedups[1].iter().copied())),
            ]);
            t
        })
        .collect()
}

/// **Figure 11**: average memory access latency (in memory cycles) per
/// workload under all-bank, per-bank and the co-design (32 Gb).
pub fn figure11(opts: &ExpOptions) -> Table {
    let schemes = [Scheme::AllBank, Scheme::PerBank, Scheme::CoDesign];
    let base = opts.base_config();
    let (_, by_scheme) = run_schemes(&base, &schemes, Scheme::AllBank, opts);
    let mut t = Table::new(
        "Figure 11 (32Gb): average memory access latency (memory cycles)",
        ["workload", "all-bank", "per-bank", "co-design"],
    );
    let lat = |r: &Option<RunMetrics>| {
        r.as_ref()
            .map_or(f64::NAN, RunMetrics::avg_read_latency_cycles)
    };
    for (i, m) in opts.workloads.iter().enumerate() {
        t.push([
            m.name.clone(),
            Table::fmt_f(lat(&by_scheme[0][i])),
            Table::fmt_f(lat(&by_scheme[1][i])),
            Table::fmt_f(lat(&by_scheme[2][i])),
        ]);
    }
    let avg = |rows: &Vec<Option<RunMetrics>>| {
        let ok: Vec<f64> = rows
            .iter()
            .flatten()
            .map(RunMetrics::avg_read_latency_cycles)
            .collect();
        if ok.is_empty() {
            f64::NAN
        } else {
            ok.iter().sum::<f64>() / ok.len() as f64
        }
    };
    t.push([
        "mean".to_owned(),
        Table::fmt_f(avg(&by_scheme[0])),
        Table::fmt_f(avg(&by_scheme[1])),
        Table::fmt_f(avg(&by_scheme[2])),
    ]);
    t
}

/// **Figure 3**: average performance degradation caused by refresh
/// (all-bank and per-bank vs the ideal no-refresh system) across
/// densities, for 64 ms and 32 ms retention.
pub fn figure03(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Figure 3: performance degradation due to refresh (avg over workloads)",
        ["retention", "density", "all-bank", "per-bank"],
    );
    for retention in [Retention::Ms64, Retention::Ms32] {
        for density in Density::ALL {
            let base = opts
                .base_config()
                .with_density(density)
                .with_retention(retention);
            let (speedups, _) = run_schemes(
                &base,
                &[Scheme::AllBank, Scheme::PerBank],
                Scheme::NoRefresh,
                opts,
            );
            let deg = |v: &Vec<f64>| gmean_finite(v.iter().copied()).map(|g| (1.0 - g) * 100.0);
            t.push([
                retention.to_string(),
                density.to_string(),
                Table::fmt_opt_pct(deg(&speedups[0])),
                Table::fmt_opt_pct(deg(&speedups[1])),
            ]);
        }
    }
    t
}

/// **Figure 4**: IPC when confining each task to `k` banks per rank
/// *with all tRFC overheads removed*, normalized to the all-bank-refresh
/// 8-bank baseline, per density.
pub fn figure04(opts: &ExpOptions) -> Table {
    let confinements = [8u32, 6, 4, 2, 1];
    let mut t = Table::new(
        "Figure 4: IPC of k-banks-per-task with refresh removed, normalized to 8-bank all-bank",
        ["density", "8", "6", "4", "2", "1"],
    );
    for density in Density::ALL {
        let base = opts.base_config().with_density(density);
        let schemes: Vec<Scheme> = confinements
            .iter()
            .map(|&k| Scheme::ConfinedNoRefresh(k))
            .collect();
        let (speedups, _) = run_schemes(&base, &schemes, Scheme::AllBank, opts);
        let mut row = vec![density.to_string()];
        row.extend(
            speedups
                .iter()
                .map(|v| Table::fmt_opt_f(gmean_finite(v.iter().copied()))),
        );
        t.push(row);
    }
    t
}

/// **Figure 5**: percentage of each benchmark's footprint that fits on a
/// single bank, per density (allocation-only experiment through the
/// bank-aware buddy allocator, bank-0-first with fallback).
pub fn figure05() -> Table {
    let mut t = Table::new(
        "Figure 5: % of footprint allocatable on one bank",
        ["benchmark", "8Gb", "16Gb", "24Gb", "32Gb"],
    );
    let mut per_density_sum = [0.0f64; 4];
    for bench in Benchmark::FIGURE5 {
        let mut row = vec![bench.name().to_owned()];
        for (di, density) in Density::ALL.iter().enumerate() {
            let geometry =
                refsim_dram::geometry::Geometry::ddr3_2rank_8bank(density.rows_per_bank());
            let mapping = refsim_dram::mapping::AddressMapping::new(
                geometry,
                refsim_dram::mapping::MappingScheme::RowRankBankColumn,
            );
            let mut alloc = BankAwareAllocator::new(mapping);
            let pages = bench.profile().footprint / refsim_os::bank_alloc::PAGE_BYTES;
            let mut last = alloc.total_banks() - 1;
            let mut on_bank0 = 0u64;
            for _ in 0..pages {
                let p = alloc
                    .alloc_page(BankVector::single(0), &mut last)
                    .expect("machine cannot OOM before footprint");
                if p.bank == 0 {
                    on_bank0 += 1;
                }
            }
            let pct = on_bank0 as f64 * 100.0 / pages as f64;
            per_density_sum[di] += pct;
            row.push(Table::fmt_pct(pct));
        }
        t.push(row);
    }
    let n = Benchmark::FIGURE5.len() as f64;
    t.push([
        "average".to_owned(),
        Table::fmt_pct(per_density_sum[0] / n),
        Table::fmt_pct(per_density_sum[1] / n),
        Table::fmt_pct(per_density_sum[2] / n),
        Table::fmt_pct(per_density_sum[3] / n),
    ]);
    t
}

/// **Figure 12**: DDR4 fine-granularity refresh (1x/2x/4x) vs the
/// co-design, normalized to the 1x mode (32 Gb).
pub fn figure12(opts: &ExpOptions) -> Table {
    let schemes = [
        Scheme::Fgr(FgrMode::X1),
        Scheme::Fgr(FgrMode::X2),
        Scheme::Fgr(FgrMode::X4),
        Scheme::CoDesign,
    ];
    let base = opts.base_config();
    let (speedups, _) = run_schemes(&base, &schemes, Scheme::Fgr(FgrMode::X1), opts);
    let mut t = Table::new(
        "Figure 12 (32Gb): DDR4 FGR modes vs co-design, normalized to DDR4-1x",
        ["workload", "ddr4-1x", "ddr4-2x", "ddr4-4x", "co-design"],
    );
    for (i, m) in opts.workloads.iter().enumerate() {
        t.push([
            m.name.clone(),
            Table::fmt_f(speedups[0][i]),
            Table::fmt_f(speedups[1][i]),
            Table::fmt_f(speedups[2][i]),
            Table::fmt_f(speedups[3][i]),
        ]);
    }
    t.push([
        "gmean".to_owned(),
        Table::fmt_opt_f(gmean_finite(speedups[0].iter().copied())),
        Table::fmt_opt_f(gmean_finite(speedups[1].iter().copied())),
        Table::fmt_opt_f(gmean_finite(speedups[2].iter().copied())),
        Table::fmt_opt_f(gmean_finite(speedups[3].iter().copied())),
    ]);
    t
}

/// **Figure 13**: the 32 ms-retention (> 85 °C) study — all-bank,
/// per-bank and co-design per density, normalized to all-bank. Headline
/// (32 Gb): co-design ≈ +34.1% over all-bank, ≈ +6.7% over per-bank.
pub fn figure13(opts: &ExpOptions) -> Vec<Table> {
    let schemes = [Scheme::PerBank, Scheme::CoDesign];
    Density::EVALUATED
        .iter()
        .map(|&d| {
            let base = opts
                .base_config()
                .with_density(d)
                .with_retention(Retention::Ms32);
            let (speedups, _) = run_schemes(&base, &schemes, Scheme::AllBank, opts);
            let mut t = Table::new(
                format!("Figure 13 ({d}, 32ms retention): IPC normalized to all-bank"),
                ["workload", "all-bank", "per-bank", "co-design"],
            );
            for (i, m) in opts.workloads.iter().enumerate() {
                t.push([
                    m.name.clone(),
                    Table::fmt_f(1.0),
                    Table::fmt_f(speedups[0][i]),
                    Table::fmt_f(speedups[1][i]),
                ]);
            }
            t.push([
                "gmean".to_owned(),
                Table::fmt_f(1.0),
                Table::fmt_opt_f(gmean_finite(speedups[0].iter().copied())),
                Table::fmt_opt_f(gmean_finite(speedups[1].iter().copied())),
            ]);
            t
        })
        .collect()
}

/// **Figure 14**: comparison with prior hardware-only proposals at
/// 32 Gb: OOO per-bank refresh (Chang et al.) and Adaptive Refresh
/// (Mukundan et al.), normalized to all-bank.
pub fn figure14(opts: &ExpOptions) -> Table {
    let schemes = [
        Scheme::PerBank,
        Scheme::OooPerBank,
        Scheme::Adaptive,
        Scheme::CoDesign,
    ];
    let base = opts.base_config();
    let (speedups, _) = run_schemes(&base, &schemes, Scheme::AllBank, opts);
    let mut t = Table::new(
        "Figure 14 (32Gb): prior proposals vs co-design, normalized to all-bank",
        [
            "workload",
            "per-bank",
            "ooo-per-bank",
            "adaptive(AR)",
            "co-design",
        ],
    );
    for (i, m) in opts.workloads.iter().enumerate() {
        t.push([
            m.name.clone(),
            Table::fmt_f(speedups[0][i]),
            Table::fmt_f(speedups[1][i]),
            Table::fmt_f(speedups[2][i]),
            Table::fmt_f(speedups[3][i]),
        ]);
    }
    t.push([
        "gmean".to_owned(),
        Table::fmt_opt_f(gmean_finite(speedups[0].iter().copied())),
        Table::fmt_opt_f(gmean_finite(speedups[1].iter().copied())),
        Table::fmt_opt_f(gmean_finite(speedups[2].iter().copied())),
        Table::fmt_opt_f(gmean_finite(speedups[3].iter().copied())),
    ]);
    t
}

/// **Figure 15**: sensitivity to consolidation ratio, core count and
/// DIMMs per channel — average speedups over all-bank for per-bank and
/// co-design, per density.
pub fn figure15(opts: &ExpOptions) -> Table {
    struct Variant {
        label: &'static str,
        cores: u32,
        tasks: usize,
        ranks: u32,
    }
    let variants = [
        Variant {
            label: "2-core 1:2, 1 DIMM",
            cores: 2,
            tasks: 4,
            ranks: 2,
        },
        Variant {
            label: "2-core 1:4, 1 DIMM",
            cores: 2,
            tasks: 8,
            ranks: 2,
        },
        Variant {
            label: "2-core 1:4, 2 DIMMs",
            cores: 2,
            tasks: 8,
            ranks: 4,
        },
        Variant {
            label: "4-core 1:4, 1 DIMM",
            cores: 4,
            tasks: 16,
            ranks: 2,
        },
    ];
    let mut t = Table::new(
        "Figure 15: sensitivity (gmean speedup over all-bank)",
        ["configuration", "density", "per-bank", "co-design"],
    );
    for v in &variants {
        for &density in &Density::EVALUATED {
            let base = opts
                .base_config()
                .with_density(density)
                .with_cores(v.cores)
                .with_ranks(v.ranks);
            let mut o = opts.clone();
            o.workloads = opts.workloads.iter().map(|m| m.resized(v.tasks)).collect();
            let (speedups, _) = run_schemes(
                &base,
                &[Scheme::PerBank, Scheme::CoDesign],
                Scheme::AllBank,
                &o,
            );
            t.push([
                v.label.to_owned(),
                density.to_string(),
                Table::fmt_opt_f(gmean_finite(speedups[0].iter().copied())),
                Table::fmt_opt_f(gmean_finite(speedups[1].iter().copied())),
            ]);
        }
    }
    t
}

/// **Table 1**: prints the evaluated configuration (the preset itself).
pub fn table01(opts: &ExpOptions) -> Table {
    let cfg = opts.base_config();
    let rt = cfg.refresh_timing();
    let mut t = Table::new("Table 1: evaluated configuration", ["parameter", "value"]);
    let rows: Vec<(String, String)> = vec![
        ("cores".into(), format!("{} @ 3.2GHz OoO, 8-wide, ROB 128", cfg.n_cores)),
        ("L1".into(), "32KB 4-way, 2-cycle".into()),
        ("L2".into(), "1MB/core 16-way, 20-cycle, 64B lines".into()),
        (
            "memory".into(),
            format!(
                "DDR3-1600, {} channel, {} ranks, 8 banks/rank, FR-FCFS, open-row, RQ/WQ 64/64, watermarks 32/54",
                cfg.channels, cfg.ranks_per_channel
            ),
        ),
        ("density".into(), cfg.density.to_string()),
        ("tREFW".into(), format!("{} (time-scale 1/{})", rt.trefw, cfg.time_scale)),
        ("tREFIab".into(), rt.trefi_ab.to_string()),
        ("tRFCab".into(), rt.trfc_ab.to_string()),
        ("tRFCpb".into(), rt.trfc_pb.to_string()),
        ("timeslice".into(), cfg.effective_timeslice().to_string()),
        ("OS scheduler".into(), format!("{:?}", cfg.sched_policy)),
        ("allocator".into(), format!("{:?} partitioning", cfg.partition)),
    ];
    for (k, v) in rows {
        t.push([k, v]);
    }
    t
}

/// **Table 2**: the workload mixes with *measured* MPKI per benchmark
/// (each benchmark run solo to calibrate its class).
pub fn table02(opts: &ExpOptions) -> Table {
    let mut jobs = Vec::new();
    for b in Benchmark::FIGURE5 {
        jobs.push(Job {
            cfg: opts.base_config(),
            mix: WorkloadMix::from_groups(b.name(), &[(b, 2)], "solo"),
        });
    }
    let runs = run_jobs_unwrap(opts, &jobs);
    let mut t = Table::new(
        "Table 2: benchmark MPKI calibration and workload mixes",
        [
            "benchmark",
            "measured MPKI",
            "class (paper)",
            "class (measured)",
        ],
    );
    for (b, r) in Benchmark::FIGURE5.iter().zip(&runs) {
        let mpki = r.mpki();
        t.push([
            b.name().to_owned(),
            Table::fmt_f(mpki),
            b.profile().class.letter().to_string(),
            refsim_workloads::profiles::MpkiClass::of(mpki)
                .letter()
                .to_string(),
        ]);
    }
    for m in table2() {
        t.push([
            m.to_string(),
            String::new(),
            m.category.clone(),
            String::new(),
        ]);
    }
    t
}

/// Energy extension (beyond the paper's evaluation): DRAM energy per
/// scheme. All policies refresh the same rows per window, so refresh
/// energy is nearly constant — schemes differentiate through runtime
/// (background energy) and row-cycle counts, making energy-per-
/// instruction track the performance results.
pub fn energy_table(opts: &ExpOptions) -> Table {
    use refsim_dram::power::PowerParams;
    let schemes = [
        Scheme::AllBank,
        Scheme::PerBank,
        Scheme::Adaptive,
        Scheme::Elastic,
        Scheme::CoDesign,
    ];
    let base = opts.base_config();
    let params = PowerParams::ddr3_1600(base.density);
    let (_, by_scheme) = run_schemes(&base, &schemes, Scheme::AllBank, opts);
    let mut t = Table::new(
        "Energy (32Gb): per-scheme DRAM energy over the measured window",
        [
            "scheme",
            "refresh mJ",
            "act/pre mJ",
            "rd+wr mJ",
            "background mJ",
            "total mJ",
            "nJ/kilo-instr",
        ],
    );
    for (s, runs) in schemes.iter().zip(&by_scheme) {
        let ok: Vec<&RunMetrics> = runs.iter().flatten().collect();
        if ok.is_empty() {
            t.push([s.label()].into_iter().chain(vec!["error".into(); 6]));
            continue;
        }
        let mut sum = refsim_dram::power::EnergyBreakdown::default();
        let mut epki = 0.0;
        for r in &ok {
            let e = r.energy(&params);
            sum.refresh_nj += e.refresh_nj;
            sum.act_pre_nj += e.act_pre_nj;
            sum.rd_nj += e.rd_nj;
            sum.wr_nj += e.wr_nj;
            sum.background_nj += e.background_nj;
            epki += r.energy_per_kilo_instruction(&params);
        }
        let n = ok.len() as f64;
        let mj = |nj: f64| format!("{:.3}", nj / 1e6);
        t.push([
            s.label(),
            mj(sum.refresh_nj),
            mj(sum.act_pre_nj),
            mj(sum.rd_nj + sum.wr_nj),
            mj(sum.background_nj),
            mj(sum.total_nj()),
            format!("{:.1}", epki / n),
        ]);
    }
    t
}

/// Ablation: the two halves of the co-design in isolation (sequential
/// refresh alone; partition + refresh-aware scheduling over round-robin
/// per-bank refresh), η_thresh sweep, and soft-vs-hard partitioning.
pub fn ablation(opts: &ExpOptions) -> Table {
    let base = opts.base_config();
    let hw_only = base
        .clone()
        .with_refresh(RefreshPolicyKind::PerBankSequential);
    let sw_only = base
        .clone()
        .with_refresh(RefreshPolicyKind::PerBankRoundRobin)
        .with_partition(PartitionPlan::Soft)
        .with_sched(SchedPolicy::refresh_aware());
    let hard = base.clone().co_design().with_partition(PartitionPlan::Hard);
    let eta1 = base
        .clone()
        .co_design()
        .with_sched(SchedPolicy::RefreshAware {
            eta_thresh: 1,
            best_effort: false,
        });
    let eta8 = base
        .clone()
        .co_design()
        .with_sched(SchedPolicy::RefreshAware {
            eta_thresh: 8,
            best_effort: true,
        });
    let variants: Vec<(&str, SystemConfig)> = vec![
        ("all-bank (baseline)", base.clone()),
        (
            "elastic refresh (Stuecheli)",
            base.clone().with_refresh(RefreshPolicyKind::Elastic),
        ),
        ("seq-refresh only (HW half)", hw_only),
        ("partition+sched only (SW half)", sw_only),
        ("co-design (η=3)", base.clone().co_design()),
        ("co-design, η=1 (disabled sched)", eta1),
        ("co-design, η=8", eta8),
        ("co-design, hard partitioning", hard),
    ];
    let mut jobs = Vec::new();
    for (_, cfg) in &variants {
        for m in &opts.workloads {
            jobs.push(Job {
                cfg: cfg.clone(),
                mix: m.clone(),
            });
        }
    }
    let runs = run_jobs(opts, &jobs);
    let w = opts.workloads.len();
    let chunks: Vec<&[Result<RunMetrics, RefsimError>]> = runs.chunks(w).collect();
    let mut t = Table::new(
        "Ablation: co-design pieces in isolation (gmean speedup over all-bank)",
        ["variant", "speedup"],
    );
    for (i, (label, _)) in variants.iter().enumerate() {
        let s = gmean_finite(
            chunks[i]
                .iter()
                .zip(chunks[0])
                .map(|(r, b)| speedup_cell(r, b)),
        );
        t.push([(*label).to_owned(), Table::fmt_opt_f(s)]);
    }
    t
}

/// **Robustness report**: retention-integrity and fault-injection
/// counters per scheme, summed over the option's workloads. Every run
/// executes with the retention oracle enabled; `plan` (if any) is
/// installed into each controller. Columns surface the counters the
/// performance tables hide: oracle violations, injected skip/delay
/// faults that fired, the scheduler's `η` fairness fallbacks, and the
/// worst refresh postponement. A failed run degrades its scheme's row
/// to an `error` status — or `violated` when the invariant sanitizer
/// rejected it — and the remaining schemes still report.
pub fn robustness_table(opts: &ExpOptions, plan: Option<&FaultPlan>) -> Table {
    let schemes = [
        Scheme::AllBank,
        Scheme::PerBank,
        Scheme::Elastic,
        Scheme::CoDesign,
    ];
    let mut base = opts.base_config().with_retention_tracking();
    base.fault_plan = plan.cloned();
    let mut jobs = Vec::new();
    for s in &schemes {
        for m in &opts.workloads {
            jobs.push(Job {
                cfg: s.apply(&base),
                mix: m.clone(),
            });
        }
    }
    let runs = run_jobs(opts, &jobs);
    let w = opts.workloads.len();
    let mut t = Table::new(
        "Robustness: retention oracle & fault injection (sum over workloads)",
        [
            "scheme",
            "status",
            "retention viol.",
            "skipped refr.",
            "delayed refr.",
            "η fallbacks",
            "max postpone",
        ],
    );
    for (s, chunk) in schemes.iter().zip(runs.chunks(w)) {
        let ok: Vec<&RunMetrics> = chunk.iter().filter_map(|r| r.as_ref().ok()).collect();
        let status = status_cell(chunk);
        if ok.is_empty() {
            t.push([
                s.label(),
                status,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let viol: u64 = ok.iter().map(|r| r.controller.retention_violations).sum();
        let skip: u64 = ok.iter().map(|r| r.controller.injected_skip_faults).sum();
        let delay: u64 = ok.iter().map(|r| r.controller.injected_delay_faults).sum();
        let eta: u64 = ok.iter().map(|r| r.sched.eta_fallbacks).sum();
        let postpone = ok
            .iter()
            .map(|r| r.controller.refresh_postpone_max)
            .max()
            .unwrap_or_default();
        t.push([
            s.label(),
            status,
            viol.to_string(),
            skip.to_string(),
            delay.to_string(),
            eta.to_string(),
            postpone.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        let mut o = ExpOptions::quick();
        o.time_scale = 512;
        o.workloads = vec![WorkloadMix::from_groups(
            "tiny",
            &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
            "M+L",
        )];
        o
    }

    #[test]
    fn status_and_speedup_cells_classify_failures() {
        use crate::sanitize::ViolationReport;
        let viol = || {
            RefsimError::InvariantViolation(Box::new(ViolationReport {
                violations: Vec::new(),
                total: 1,
                errors: 1,
            }))
        };
        let crash = || RefsimError::Panicked("boom".into());
        assert_eq!(
            status_cell(&[Err(viol())]).split(':').next(),
            Some("violated")
        );
        assert_eq!(
            status_cell(&[Err(crash())]).split(':').next(),
            Some("error")
        );
        let ok_run: Result<RunMetrics, RefsimError> = Err(crash());
        assert!(speedup_cell(&ok_run, &ok_run).is_nan());
        assert_eq!(speedup_cell(&Err(viol()), &ok_run), f64::NEG_INFINITY);
    }

    #[test]
    fn scheme_labels_and_apply() {
        assert_eq!(Scheme::CoDesign.label(), "co-design");
        assert_eq!(Scheme::Fgr(FgrMode::X2).label(), "ddr4-2x");
        assert_eq!(Scheme::ConfinedNoRefresh(4).label(), "4-banks+no-tRFC");
        let base = SystemConfig::table1();
        let c = Scheme::ConfinedNoRefresh(4).apply(&base);
        assert_eq!(c.refresh_policy, RefreshPolicyKind::NoRefresh);
        assert_eq!(c.partition, PartitionPlan::Confine { banks_per_task: 4 });
    }

    #[test]
    fn options_presets() {
        let full = ExpOptions::full();
        assert_eq!(full.workloads.len(), 10);
        let quick = ExpOptions::quick();
        assert_eq!(quick.workloads.len(), 4);
        assert!(quick.time_scale > full.time_scale);
        let cfg = quick.base_config();
        assert_eq!(cfg.measure, cfg.trefw());
    }

    #[test]
    fn run_many_preserves_order_and_parallelism() {
        let o = tiny_opts();
        let jobs: Vec<Job> = (0..3)
            .map(|i| Job {
                cfg: o.base_config().with_seed(i),
                mix: o.workloads[0].clone(),
            })
            .collect();
        let serial = run_many(&jobs, 1);
        let parallel = run_many(&jobs, 3);
        assert_eq!(serial.len(), 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.tasks, b.tasks, "parallel run must be deterministic");
        }
    }

    #[test]
    fn checked_sweep_records_errors_and_continues() {
        use refsim_dram::time::Ps;
        let o = tiny_opts();
        let mut bad = o.base_config();
        bad.measure = Ps::ZERO; // rejected by SystemConfig::validate
        let jobs: Vec<Job> = [o.base_config(), bad, o.base_config()]
            .into_iter()
            .map(|cfg| Job {
                cfg,
                mix: o.workloads[0].clone(),
            })
            .collect();
        let r = run_many_checked(&jobs, 3);
        assert!(r[0].is_ok(), "{:?}", r[0]);
        assert!(r[2].is_ok());
        match &r[1] {
            Err(RefsimError::InvalidConfig(why)) => assert!(why.contains("measure")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn robustness_table_surfaces_weak_row_violations() {
        let o = tiny_opts();
        // Weak rows with retention far below tREFW: every real schedule
        // refreshes them too slowly, so the oracle must flag them under
        // all schemes — deterministically, via the plan's fixed seed.
        let mut plan = FaultPlan::none(3);
        plan.weak_rows = 4;
        plan.weak_limit = o.base_config().trefw() / 8;
        let t = robustness_table(&o, Some(&plan));
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert_eq!(row[1], "ok", "{row:?}");
            let viol: u64 = row[2].parse().expect("violation count");
            assert!(viol > 0, "weak rows unreported for {}", row[0]);
            assert_eq!(row[3], "0", "no skip faults were planned");
        }
        // Clean configuration: no oracle violations anywhere.
        let t = robustness_table(&o, None);
        for row in &t.rows {
            assert_eq!(row[1], "ok");
            assert_eq!(row[2], "0", "clean run flagged for {}", row[0]);
        }
    }

    #[test]
    fn figure05_shape_is_monotone_in_density() {
        let t = figure05();
        assert_eq!(t.headers.len(), 5);
        // mcf row: percentage grows with density, reaching 100% at 32 Gb
        // (1.7 GB < 2 GB bank).
        let mcf = &t.rows[0];
        assert_eq!(mcf[0], "mcf");
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        assert!(parse(&mcf[1]) < parse(&mcf[4]));
        assert!((parse(&mcf[4]) - 100.0).abs() < 0.5);
        // povray fits everywhere.
        let povray = &t.rows[1];
        assert!((parse(&povray[1]) - 100.0).abs() < 0.5);
    }
}

//! Content-addressed, persistent cache of run results.
//!
//! A run is a pure function of `(SystemConfig, WorkloadMix)` — the
//! config already carries the span (`warmup`/`measure`), the seed, and
//! the engine — which PR 4's replay-hash proofs turned into a checkable
//! contract. This module turns the same property into *memoization*:
//! every `(config, mix)` pair hashes to a stable **canonical
//! fingerprint** ([`job_fingerprint`]), and a finished run's
//! [`RunMetrics`] (plus its final replay state hash, for later
//! verification) can be persisted under that fingerprint and served to
//! any later run of a bit-identical cell, whether in the same sweep, a
//! different figure binary, or a different process entirely.
//!
//! # Fingerprint derivation
//!
//! The fingerprint is FNV-1a over a hand-rolled canonical encoding of
//! every semantically load-bearing knob — *not* over the `Debug`
//! representation, which reshuffles whenever a field is renamed or
//! reordered. Presentation-only fields (the mix's display name and
//! MPKI-category label) are excluded: two mixes with identical task
//! lists simulate identically. The encoding is salted with
//! [`CACHE_SCHEMA`]; bump it whenever simulation semantics change in a
//! way the config encoding cannot see, and every existing entry turns
//! into a miss.
//!
//! # Entry format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RFSC"
//! 4       4     format version (LE u32, currently 1)
//! 8       4     cache schema salt (LE u32)
//! 12      8     job fingerprint
//! 20      8     final replay state hash (StateHashes::combined)
//! 28      8     original run wall-clock nanoseconds
//! 36      8     payload length N
//! 44      N     payload: RunMetrics via the crate codec
//! 44+N    8     checksum: FNV-1a over bytes [0, 44+N)
//! ```
//!
//! Entries are written atomically (unique temp sibling + rename), so a
//! crash mid-store can never leave a torn entry; a torn, truncated,
//! version-skewed, or checksum-corrupt entry simply reads as a **miss**
//! and is overwritten by the next store.
//!
//! # Bypass rules
//!
//! Some runs exist to *observe the simulator*, not to produce reusable
//! numbers: invariant-audited runs, fault-injected runs, and runs with
//! the debug skip-overshoot knob set. [`bypass_reason`] names these;
//! the sweep runner neither reads nor writes the cache for them, so
//! soak/chaos harnesses and sanitizer sweeps always execute for real.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use refsim_dram::backend::{BackendKind, TickPath};
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, Retention};
use refsim_os::partition::PartitionPlan;
use refsim_os::sched::SchedPolicy;
use refsim_workloads::mix::WorkloadMix;

use refsim_dram::mapping::MappingScheme;

use crate::codec::{self, CodecError, Dec, Enc, Snapshot};
use crate::config::{EngineKind, ShardMode, SystemConfig};
use crate::metrics::RunMetrics;
use crate::sanitize::AuditLevel;
use crate::vfs::{self, std_vfs, Vfs, VfsError, VfsErrorKind};

/// Magic number opening every cache entry.
pub const CACHE_MAGIC: [u8; 4] = *b"RFSC";
/// Current entry format version.
pub const CACHE_VERSION: u32 = 1;
/// Schema salt folded into every fingerprint *and* stored in every
/// entry. Bump on any semantic change the config encoding cannot
/// express (e.g. a simulator behavior fix): all prior entries read as
/// misses. v2: the backend-selection and shadow-perturbation knobs
/// joined the fingerprint preimage. v3: the tick-path knob (batched
/// vs. scalar-reference channel ticking) joined the preimage — the
/// paths are bit-identical by construction, but the fingerprint keeps
/// them distinguishable so an equivalence regression can never alias
/// cache entries across them. v4: the shard-mode knob joined the
/// preimage under the same rule (the sharded walk is proven
/// bit-identical to the serial one); the shard *thread budget* is
/// deliberately excluded because results do not depend on it.
pub const CACHE_SCHEMA: u32 = 4;

/// Environment variable naming the shared cache directory.
pub const CACHE_DIR_ENV: &str = "REFSIM_CACHE_DIR";

// ---- canonical fingerprint ----------------------------------------------

fn put_ps(e: &mut Enc, p: Ps) {
    e.put_u64(p.as_ps());
}

fn put_opt_ps(e: &mut Enc, p: Option<Ps>) {
    match p {
        None => e.put_u8(0),
        Some(p) => {
            e.put_u8(1);
            put_ps(e, p);
        }
    }
}

fn put_str(e: &mut Enc, s: &str) {
    e.put_u64(s.len() as u64);
    e.put_bytes(s.as_bytes());
}

fn put_refresh(e: &mut Enc, p: RefreshPolicyKind) {
    // Explicit tags: stable against enum reordering, and a new variant
    // fails to compile here instead of silently colliding.
    let (tag, sub) = match p {
        RefreshPolicyKind::NoRefresh => (0u8, 0u8),
        RefreshPolicyKind::AllBank => (1, 0),
        RefreshPolicyKind::PerBankRoundRobin => (2, 0),
        RefreshPolicyKind::PerBankSequential => (3, 0),
        RefreshPolicyKind::OooPerBank => (4, 0),
        RefreshPolicyKind::Fgr(FgrMode::X1) => (5, 1),
        RefreshPolicyKind::Fgr(FgrMode::X2) => (5, 2),
        RefreshPolicyKind::Fgr(FgrMode::X4) => (5, 4),
        RefreshPolicyKind::Adaptive => (6, 0),
        RefreshPolicyKind::Elastic => (7, 0),
    };
    e.put_u8(tag);
    e.put_u8(sub);
}

fn put_partition(e: &mut Enc, p: PartitionPlan) {
    match p {
        PartitionPlan::None => {
            e.put_u8(0);
            e.put_u32(0);
        }
        PartitionPlan::Soft => {
            e.put_u8(1);
            e.put_u32(0);
        }
        PartitionPlan::Confine { banks_per_task } => {
            e.put_u8(2);
            e.put_u32(banks_per_task);
        }
        PartitionPlan::Hard => {
            e.put_u8(3);
            e.put_u32(0);
        }
    }
}

fn put_sched(e: &mut Enc, p: SchedPolicy) {
    match p {
        SchedPolicy::Cfs => {
            e.put_u8(0);
            e.put_u32(0);
            e.put_u8(0);
        }
        SchedPolicy::RefreshAware {
            eta_thresh,
            best_effort,
        } => {
            e.put_u8(1);
            e.put_u32(eta_thresh);
            e.put_u8(u8::from(best_effort));
        }
    }
}

/// Canonical byte encoding of every simulation-relevant knob of a
/// `(config, mix)` cell. This is the cache key's preimage; see the
/// module docs for what is deliberately excluded.
pub fn fingerprint_bytes(cfg: &SystemConfig, mix: &WorkloadMix) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_bytes(b"refsim-runcache");
    e.put_u32(CACHE_SCHEMA);

    e.put_u32(cfg.n_cores);
    e.put_u32(cfg.channels);
    e.put_u32(cfg.ranks_per_channel);
    e.put_u8(match cfg.density {
        Density::Gb8 => 8,
        Density::Gb16 => 16,
        Density::Gb24 => 24,
        Density::Gb32 => 32,
    });
    e.put_u8(match cfg.retention {
        Retention::Ms64 => 64,
        Retention::Ms32 => 32,
    });
    put_refresh(&mut e, cfg.refresh_policy);
    e.put_u8(match cfg.mapping {
        MappingScheme::RowRankBankColumn => 0,
        MappingScheme::RowBankRankColumn => 1,
        MappingScheme::BankRankRowColumn => 2,
        MappingScheme::PermutedBank => 3,
    });
    put_partition(&mut e, cfg.partition);
    put_sched(&mut e, cfg.sched_policy);
    e.put_u32(cfg.time_scale);
    put_opt_ps(&mut e, cfg.timeslice);

    put_ps(&mut e, cfg.core.period);
    put_ps(&mut e, cfg.core.base_ppi);
    e.put_u64(cfg.core.rob);
    e.put_u64(cfg.core.mshrs as u64);
    put_ps(&mut e, cfg.core.l2_hit_penalty);

    e.put_u64(cfg.controller.read_queue as u64);
    e.put_u64(cfg.controller.write_queue as u64);
    e.put_u64(cfg.controller.wq_high as u64);
    e.put_u64(cfg.controller.wq_low as u64);
    put_ps(&mut e, cfg.controller.utilization_epoch);
    e.put_u8(u8::from(cfg.controller.track_retention));

    put_ps(&mut e, cfg.ctx_switch_cost);
    put_ps(&mut e, cfg.fault_cost);
    put_ps(&mut e, cfg.warmup);
    put_ps(&mut e, cfg.measure);
    e.put_u64(cfg.seed);

    match &cfg.fault_plan {
        None => e.put_u8(0),
        Some(p) => {
            e.put_u8(1);
            e.put_u64(p.seed);
            e.put_u32(p.skip_ppm);
            e.put_u32(p.delay_ppm);
            put_ps(&mut e, p.max_delay);
            e.put_u32(p.weak_rows);
            put_ps(&mut e, p.weak_limit);
            e.put_u64(p.horizon);
        }
    }
    e.put_u8(match cfg.audit {
        AuditLevel::Off => 0,
        AuditLevel::Sampled => 1,
        AuditLevel::Full => 2,
    });
    e.put_u8(match cfg.engine {
        EngineKind::FixedStep => 0,
        EngineKind::EventSkip => 1,
    });
    put_ps(&mut e, cfg.step);
    put_ps(&mut e, cfg.debug_skip_overshoot);
    // The DRAM timing model behind the trait: cached results from
    // different backends must never alias even when their metrics agree.
    e.put_u8(match cfg.backend {
        BackendKind::Primary => 0,
        BackendKind::Shadow => 1,
    });
    e.put_u64(cfg.shadow.drop_refresh_every);
    // Hot-path selector: the two paths are proven bit-identical, but a
    // cached artifact still records which implementation produced it so
    // a scalar-reference debug run can never serve (or be served by)
    // batched results — same rule as `debug_skip_overshoot`.
    e.put_u8(match cfg.tick_path {
        TickPath::Batched => 0,
        TickPath::ScalarReference => 1,
    });
    // Shard mode follows the same rule as `tick_path`: sharded and
    // serial walks are bit-identical by construction, but a cached
    // artifact records which walk produced it so an equivalence
    // regression can never alias entries across them. The shard
    // *thread budget* (`shard_threads` / REFSIM_THREADS) is
    // deliberately excluded — results are identical at any worker
    // count, so differently provisioned hosts share cache artifacts.
    e.put_u8(match cfg.shard {
        ShardMode::Serial => 0,
        ShardMode::Channel => 1,
    });

    // The mix: task list only. Benchmarks are encoded by name, which is
    // stable against enum reordering; the mix's display name and
    // category label are presentation-only and excluded so bit-identical
    // cells dedup across differently labeled mixes.
    e.put_u64(mix.tasks.len() as u64);
    for b in &mix.tasks {
        put_str(&mut e, b.name());
    }
    e.into_bytes()
}

/// Stable canonical fingerprint of a `(config, mix)` cell: FNV-1a over
/// [`fingerprint_bytes`]. Equal fingerprints ⇒ bit-identical runs (the
/// determinism contract pinned by the replay suite); the cache and the
/// in-flight deduper both key on this value.
pub fn job_fingerprint(cfg: &SystemConfig, mix: &WorkloadMix) -> u64 {
    codec::fnv64(&fingerprint_bytes(cfg, mix))
}

/// Why a configuration must not touch the cache, or `None` when caching
/// is sound. Audited, fault-injected, and debug-knob runs exist to
/// observe the simulator; serving them from (or into) the cache would
/// defeat their purpose.
pub fn bypass_reason(cfg: &SystemConfig) -> Option<&'static str> {
    if cfg.audit != AuditLevel::Off {
        return Some("invariant audit enabled");
    }
    if cfg.fault_plan.is_some() {
        return Some("fault-injection plan installed");
    }
    if cfg.debug_skip_overshoot > Ps::ZERO {
        return Some("debug skip-overshoot set");
    }
    if cfg.shadow.is_perturbed() {
        return Some("shadow-model perturbation set");
    }
    None
}

// ---- entries -------------------------------------------------------------

/// One persisted run result.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Canonical fingerprint of the cell that produced the metrics.
    pub fingerprint: u64,
    /// Final replay state hash ([`crate::replay::StateHashes::combined`])
    /// of the run, for sampled re-verification.
    pub replay_hash: u64,
    /// Wall-clock nanoseconds the original run took (drives the
    /// "estimated seconds saved" telemetry).
    pub wall_nanos: u64,
    /// The run's metrics.
    pub metrics: RunMetrics,
}

impl CacheEntry {
    /// Serializes the entry into the version-1 file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = codec::to_bytes(&self.metrics);
        let mut e = Enc::new();
        e.put_bytes(&CACHE_MAGIC);
        e.put_u32(CACHE_VERSION);
        e.put_u32(CACHE_SCHEMA);
        e.put_u64(self.fingerprint);
        e.put_u64(self.replay_hash);
        e.put_u64(self.wall_nanos);
        e.put_u64(payload.len() as u64);
        e.put_bytes(&payload);
        let mut bytes = e.into_bytes();
        let checksum = codec::fnv64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Parses and verifies a version-1 entry. Every failure mode —
    /// truncation, wrong magic, version or schema skew, checksum
    /// mismatch, undecodable payload — is a plain `None`: the caller
    /// treats it as a miss and re-runs.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().ok()?);
        if codec::fnv64(body) != stored {
            return None;
        }
        let mut d = Dec::new(body);
        if d.get_bytes(4).ok()? != CACHE_MAGIC {
            return None;
        }
        if d.get_u32().ok()? != CACHE_VERSION || d.get_u32().ok()? != CACHE_SCHEMA {
            return None;
        }
        let fingerprint = d.get_u64().ok()?;
        let replay_hash = d.get_u64().ok()?;
        let wall_nanos = d.get_u64().ok()?;
        let n = d.get_u64().ok()?;
        if n != d.remaining() as u64 {
            return None;
        }
        let payload = d.get_bytes(n as usize).ok()?;
        let metrics: RunMetrics = decode_all(payload).ok()?;
        Some(CacheEntry {
            fingerprint,
            replay_hash,
            wall_nanos,
            metrics,
        })
    }
}

fn decode_all<T: Snapshot>(bytes: &[u8]) -> Result<T, CodecError> {
    codec::from_bytes(bytes)
}

// ---- the cache -----------------------------------------------------------

/// What a cache probe found, with the miss cause classified so
/// telemetry (and the crash-matrix harness) can tell "never ran" from
/// "ran but the entry rotted" from "the disk is failing".
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A valid entry, with its on-disk size in bytes. Boxed: an entry
    /// carries full run metrics, and the other arms are near-empty.
    Hit(Box<CacheEntry>, u64),
    /// No entry exists for the fingerprint.
    Absent,
    /// An entry exists but is torn, corrupt, version-skewed, or
    /// mislabeled; it has been quarantined under a `.run.quarantine`
    /// name and the cell re-runs.
    Corrupt,
    /// The entry could not be read at all (I/O failure, not ENOENT).
    Io(VfsError),
}

/// Handle to a content-addressed run-cache directory. Cloneable and
/// cheap; the directory is created lazily on the first store. Equality
/// compares the directory only — two handles over the same directory
/// are the same cache regardless of the filesystem layer in front.
#[derive(Debug, Clone)]
pub struct RunCache {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl PartialEq for RunCache {
    fn eq(&self, other: &Self) -> bool {
        self.dir == other.dir
    }
}

impl Eq for RunCache {}

impl RunCache {
    /// A cache rooted at `dir`, on the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RunCache::with_vfs(dir, std_vfs())
    }

    /// A cache rooted at `dir` doing its I/O through `vfs` — the
    /// fault-injection seam used by the crash-matrix harness.
    pub fn with_vfs(dir: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> Self {
        RunCache {
            dir: dir.into(),
            vfs,
        }
    }

    /// The cache named by [`CACHE_DIR_ENV`], or `None` when the
    /// variable is unset or empty.
    pub fn from_env() -> Option<Self> {
        match std::env::var(CACHE_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => Some(RunCache::new(dir)),
            _ => None,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.run"))
    }

    /// Probes the cache for `fingerprint`, classifying the outcome.
    /// Torn, corrupt, version-skewed, or mislabeled entries (stored
    /// fingerprint ≠ requested) are quarantined in place under a
    /// reproducer-grade `<fingerprint>.run.quarantine` name so the
    /// damaged bytes survive for triage while the slot frees up for the
    /// re-run's store.
    pub fn lookup(&self, fingerprint: u64) -> CacheLookup {
        let path = self.entry_path(fingerprint);
        let bytes = match self.vfs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind == VfsErrorKind::NotFound => return CacheLookup::Absent,
            Err(e) => return CacheLookup::Io(e),
        };
        match CacheEntry::from_bytes(&bytes) {
            Some(entry) if entry.fingerprint == fingerprint => {
                CacheLookup::Hit(Box::new(entry), bytes.len() as u64)
            }
            _ => {
                let _ = self
                    .vfs
                    .rename(&path, &path.with_extension("run.quarantine"));
                CacheLookup::Corrupt
            }
        }
    }

    /// Reads the cached wall-clock cost of `fingerprint` without any
    /// lookup side effects — no stats, no quarantine of damaged
    /// entries. The sweep executor uses it as its cost estimator when
    /// ordering dispatch; a damaged entry is simply "no estimate" here
    /// and is classified properly when the real lookup runs.
    pub fn peek_wall_nanos(&self, fingerprint: u64) -> Option<u64> {
        let bytes = self.vfs.read(&self.entry_path(fingerprint)).ok()?;
        match CacheEntry::from_bytes(&bytes) {
            Some(entry) if entry.fingerprint == fingerprint => Some(entry.wall_nanos),
            _ => None,
        }
    }

    /// Loads the entry for `fingerprint`, returning it with its on-disk
    /// size; every non-hit [`CacheLookup`] class collapses to `None`.
    pub fn load(&self, fingerprint: u64) -> Option<(CacheEntry, u64)> {
        match self.lookup(fingerprint) {
            CacheLookup::Hit(entry, size) => Some((*entry, size)),
            _ => None,
        }
    }

    /// Atomically persists `entry` ([`crate::vfs::write_atomic`]),
    /// creating the cache directory if needed. Returns the bytes
    /// written.
    ///
    /// # Errors
    ///
    /// The classified filesystem failure. Callers treat store failures
    /// as non-fatal: the run's result is already in hand, the cache
    /// just stays cold.
    pub fn store(&self, entry: &CacheEntry) -> Result<u64, VfsError> {
        self.vfs.create_dir_all(&self.dir)?;
        let bytes = entry.to_bytes();
        vfs::write_atomic(&*self.vfs, &self.entry_path(entry.fingerprint), &bytes)?;
        Ok(bytes.len() as u64)
    }
}

// ---- telemetry -----------------------------------------------------------

/// Cache and deduplication telemetry for one sweep (or, merged, for a
/// whole figure pipeline).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Result cells requested (before dedup).
    pub requested: u64,
    /// Cells whose work was shared with an identical in-flight cell.
    pub deduped: u64,
    /// Simulation attempts actually executed.
    pub executed: u64,
    /// Cells served from a persistent cache entry.
    pub hits: u64,
    /// Cells that probed the cache and found nothing usable.
    pub misses: u64,
    /// Misses where no entry existed (cold cache — the benign case).
    pub misses_absent: u64,
    /// Misses where an entry existed but was torn, corrupt,
    /// version-skewed, or mislabeled; the entry was quarantined.
    pub misses_corrupt: u64,
    /// Misses where the entry could not be read at all (I/O failure).
    pub misses_io: u64,
    /// Entries written.
    pub stores: u64,
    /// Entry stores that failed (ENOSPC, torn write, dead disk); the
    /// run's result was still delivered, the cache just stayed cold.
    pub store_failures: u64,
    /// Cells that skipped the cache per [`bypass_reason`].
    pub bypassed: u64,
    /// Cache hits that were re-executed for verification.
    pub verified: u64,
    /// Verifications whose re-run did not match the entry.
    pub verify_failures: u64,
    /// Entry bytes read on hits.
    pub bytes_read: u64,
    /// Entry bytes written on stores.
    pub bytes_written: u64,
    /// Original wall-clock nanoseconds of the runs served from cache —
    /// the estimated time the cache saved.
    pub saved_nanos: u64,
}

impl CacheStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.requested += other.requested;
        self.deduped += other.deduped;
        self.executed += other.executed;
        self.hits += other.hits;
        self.misses += other.misses;
        self.misses_absent += other.misses_absent;
        self.misses_corrupt += other.misses_corrupt;
        self.misses_io += other.misses_io;
        self.stores += other.stores;
        self.store_failures += other.store_failures;
        self.bypassed += other.bypassed;
        self.verified += other.verified;
        self.verify_failures += other.verify_failures;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.saved_nanos += other.saved_nanos;
    }

    /// Requested cells per executed simulation — how much work the
    /// dedup + cache layers elided. 1.0 means nothing was shared.
    pub fn dedup_factor(&self) -> f64 {
        if self.executed == 0 {
            return if self.requested == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.requested as f64 / self.executed as f64
    }

    /// Hits over cache probes (hits + misses), in `[0, 1]`; 0 when the
    /// cache was never probed.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }

    /// One-line human summary. Miss classes (absent/corrupt/io) and
    /// store failures are shown only when a non-benign class is
    /// nonzero, keeping the healthy-path line short.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "cells {} | executed {} | dedup {:.2}x | cache {} hit / {} miss / {} stored \
             / {} bypassed | verified {} ({} failed) | ~{:.2}s saved",
            self.requested,
            self.executed,
            self.dedup_factor(),
            self.hits,
            self.misses,
            self.stores,
            self.bypassed,
            self.verified,
            self.verify_failures,
            self.saved_nanos as f64 / 1e9,
        );
        if self.misses_corrupt > 0 || self.misses_io > 0 || self.store_failures > 0 {
            s.push_str(&format!(
                " | DEGRADED: {} corrupt / {} io-error misses, {} failed stores",
                self.misses_corrupt, self.misses_io, self.store_failures
            ));
        }
        s
    }

    /// Hand-formatted JSON (the workspace deliberately has no JSON
    /// dependency), suitable for CI artifact upload.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"requested\": {},\n  \"deduped\": {},\n  \"executed\": {},\n  \
             \"hits\": {},\n  \"misses\": {},\n  \"misses_absent\": {},\n  \
             \"misses_corrupt\": {},\n  \"misses_io\": {},\n  \"stores\": {},\n  \
             \"store_failures\": {},\n  \"bypassed\": {},\n  \
             \"verified\": {},\n  \"verify_failures\": {},\n  \"bytes_read\": {},\n  \
             \"bytes_written\": {},\n  \"saved_nanos\": {},\n  \"dedup_factor\": {:.4},\n  \
             \"hit_rate\": {:.4}\n}}\n",
            self.requested,
            self.deduped,
            self.executed,
            self.hits,
            self.misses,
            self.misses_absent,
            self.misses_corrupt,
            self.misses_io,
            self.stores,
            self.store_failures,
            self.bypassed,
            self.verified,
            self.verify_failures,
            self.bytes_read,
            self.bytes_written,
            self.saved_nanos,
            self.dedup_factor(),
            self.hit_rate(),
        )
    }

    /// Writes [`CacheStats::to_json`] to `path` atomically
    /// ([`crate::vfs::write_atomic`]), like cache entries.
    ///
    /// # Errors
    ///
    /// The classified filesystem failure.
    pub fn write_json(&self, path: &Path) -> Result<(), VfsError> {
        vfs::write_atomic(&crate::vfs::StdVfs, path, self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskMetrics;
    use refsim_workloads::mix::by_name;

    fn entry(fp: u64) -> CacheEntry {
        CacheEntry {
            fingerprint: fp,
            replay_hash: 0xDEAD_BEEF,
            wall_nanos: 1_500_000_000,
            metrics: RunMetrics {
                tasks: vec![TaskMetrics {
                    task: 0,
                    label: "mcf".into(),
                    instructions: 123,
                    cpu_time: Ps::from_us(1),
                    stall_time: Ps::ZERO,
                    llc_misses: 9,
                    faults: 1,
                    spilled_pages: 0,
                    schedules: 2,
                }],
                sim_time: Ps::from_us(4),
                controller: Default::default(),
                sched: Default::default(),
                cpu_period: Ps::from_ps(312),
                dram_period: Ps::from_ps(1250),
            },
        }
    }

    fn tmp_cache(tag: &str) -> RunCache {
        let d = std::env::temp_dir().join(format!("refsim-runcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        RunCache::new(d)
    }

    #[test]
    fn entry_roundtrips() {
        let e = entry(42);
        let back = CacheEntry::from_bytes(&e.to_bytes()).expect("roundtrip");
        assert_eq!(back, e);
    }

    #[test]
    fn corruption_version_skew_and_truncation_read_as_miss() {
        let e = entry(42);
        let bytes = e.to_bytes();
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            // Any single-byte flip must fail the checksum (or a header
            // check) — never decode to a different entry.
            assert!(CacheEntry::from_bytes(&b).is_none(), "flip at {i}");
        }
        assert!(CacheEntry::from_bytes(&bytes[..bytes.len() - 3]).is_none());
        assert!(CacheEntry::from_bytes(b"").is_none());
    }

    #[test]
    fn store_load_and_atomicity() {
        let cache = tmp_cache("roundtrip");
        let e = entry(7);
        let wrote = cache.store(&e).expect("store");
        assert!(wrote > 0);
        // No temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(cache.dir())
            .expect("dir")
            .filter(|f| {
                f.as_ref()
                    .expect("entry")
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(leftovers.is_empty());
        let (back, bytes) = cache.load(7).expect("hit");
        assert_eq!(back, e);
        assert_eq!(bytes, wrote);
        assert!(cache.load(8).is_none(), "absent fingerprint must miss");
        // A mislabeled entry (file name != stored fingerprint) must miss.
        std::fs::rename(cache.entry_path(7), cache.entry_path(9)).expect("rename");
        assert!(cache.load(9).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn lookup_classifies_misses_and_quarantines_corrupt_entries() {
        let cache = tmp_cache("classify");
        assert_eq!(cache.lookup(1), CacheLookup::Absent, "cold cache");
        let e = entry(1);
        cache.store(&e).expect("store");
        assert!(matches!(cache.lookup(1), CacheLookup::Hit(_, _)));
        // Bitrot: flip one byte in the stored entry.
        let path = cache.entry_path(1);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("re-write");
        assert_eq!(cache.lookup(1), CacheLookup::Corrupt);
        assert!(
            !path.exists() && path.with_extension("run.quarantine").exists(),
            "corrupt entry must be quarantined under a reproducer-grade name"
        );
        assert_eq!(
            cache.lookup(1),
            CacheLookup::Absent,
            "slot freed for a re-store"
        );
        // An unreadable path (a directory where the entry should be) is
        // an I/O-class miss, not a silent one.
        std::fs::create_dir_all(cache.entry_path(2)).expect("dir in the way");
        assert!(matches!(cache.lookup(2), CacheLookup::Io(_)));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fingerprint_is_stable_and_ignores_presentation_fields() {
        let cfg = SystemConfig::table1();
        let mix = by_name("WL-5").expect("mix");
        assert_eq!(job_fingerprint(&cfg, &mix), job_fingerprint(&cfg, &mix));
        let mut renamed = mix.clone();
        renamed.name = "renamed".into();
        renamed.category = "X".into();
        assert_eq!(
            job_fingerprint(&cfg, &mix),
            job_fingerprint(&cfg, &renamed),
            "display name and category are presentation-only"
        );
        let other = by_name("WL-4").expect("mix");
        assert_ne!(job_fingerprint(&cfg, &mix), job_fingerprint(&cfg, &other));
    }

    #[test]
    fn bypass_reasons() {
        let clean = SystemConfig::table1();
        assert_eq!(bypass_reason(&clean), None);
        assert!(bypass_reason(&clean.clone().with_audit(AuditLevel::Sampled)).is_some());
        assert!(bypass_reason(&clean.clone().with_audit(AuditLevel::Full)).is_some());
        assert!(
            bypass_reason(
                &clean
                    .clone()
                    .with_fault_plan(crate::faults::FaultPlan::none(1))
            )
            .is_some(),
            "any installed plan bypasses, even an empty one"
        );
        assert!(bypass_reason(&clean.clone().with_debug_skip_overshoot(Ps(1))).is_some());
    }

    #[test]
    fn stats_merge_and_rates() {
        let mut a = CacheStats {
            requested: 10,
            deduped: 4,
            executed: 6,
            hits: 3,
            misses: 3,
            ..Default::default()
        };
        let b = CacheStats {
            requested: 10,
            executed: 4,
            hits: 6,
            misses: 1,
            saved_nanos: 2_000_000_000,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.requested, 20);
        assert_eq!(a.executed, 10);
        assert!((a.dedup_factor() - 2.0).abs() < 1e-12);
        assert!((a.hit_rate() - 9.0 / 13.0).abs() < 1e-12);
        let json = a.to_json();
        assert!(json.contains("\"hits\": 9"), "{json}");
        assert!(a.summary().contains("dedup 2.00x"), "{}", a.summary());
    }
}

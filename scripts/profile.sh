#!/usr/bin/env bash
# Hot-path profiling workflow for the simulator.
#
# Produces, into --out-dir (default ./profile-out):
#
#   * BENCH_simwall.json — the scenario matrix with the "hotpath" block
#     (scalar vs batched tick-path walls, and ns_per_command: wall
#     nanoseconds per retired DRAM command — the profile-stable unit
#     cost that makes flamegraph diffs comparable across hosts) and the
#     "sharding" block (serial vs channel-sharded walls on the
#     4-channel scenario);
#   * perf-stat.txt      — hardware counters for the compute-bound
#     scenario run, when `perf` is available;
#   * flamegraph.svg     — a CPU flamegraph of the same run, when
#     `perf` + an inferno/flamegraph toolchain are available.
#
# Every stage degrades gracefully: on hosts without perf (containers,
# macOS, CI runners without perf_event access) the script still emits
# the benchmark artifact and prints which stages were skipped and why.
# Nothing here gates; the gating floors live in `simwall --check`.
#
# Usage:
#   scripts/profile.sh [--quick] [--out-dir DIR] [--pgo]
#
# --pgo builds a profile-guided simwall (instrument → train on the
# scenario matrix → rebuild with the merged profile) and reports the
# hotpath medians of the PGO build next to the plain build. Requires
# llvm-profdata (from rustup's llvm-tools component or the system LLVM);
# skipped with a note otherwise.

set -euo pipefail

QUICK=""
OUT_DIR="profile-out"
PGO=0
while [ $# -gt 0 ]; do
    case "$1" in
        --quick) QUICK="--quick" ;;
        --out-dir) OUT_DIR="$2"; shift ;;
        --pgo) PGO=1 ;;
        -h|--help)
            sed -n '2,27p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *) echo "unknown flag $1 (try --help)" >&2; exit 2 ;;
    esac
    shift
done

cd "$(dirname "$0")/.."
mkdir -p "$OUT_DIR"

note() { printf '%s\n' "$*" >&2; }

# ---- 1. benchmark artifact (always) ---------------------------------
note "==> building simwall (release, debug symbols)"
cargo build --release -p refsim-bench --bin simwall

note "==> simwall scenario matrix + hotpath block"
./target/release/simwall $QUICK --out "$OUT_DIR/BENCH_simwall.json"

if command -v python3 >/dev/null 2>&1; then
    note "==> ns_per_command summary"
    python3 - "$OUT_DIR/BENCH_simwall.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
print(f"{'scenario':<20} {'ratio':>7} {'ns/cmd':>10}")
for row in doc.get("hotpath", {}).get("rows", []):
    print(f"{row['name']:<20} {row['ratio']:>6.2f}x {row['ns_per_command']:>10.2f}")
sh = doc.get("sharding", {})
if sh:
    gate = "skipped" if sh.get("floor_skipped") else "gated"
    print(f"sharding ({sh.get('channels')}ch, floor {gate}):")
    for row in sh.get("rows", []):
        print(f"  {row['threads']} thread(s) {row['speedup']:>6.2f}x")
EOF
fi

# The profiling target covers both hot regimes: the compute-bound
# scenarios, where the per-op hot loop (workload op stream ->
# translate -> cache access) plus the channel tick are ~95 % of wall
# time, and the 4-channel sharding scenario, where the per-channel
# controller tick dominates and the shard workers' advance loop is the
# hot path — so the flamegraph shows both the single-channel tick cost
# and the sharded multi-channel walk.
PROFILE_CMD=(./target/release/simwall --quick --shard-threads 1,4 --out "$OUT_DIR/BENCH_profiled.json")

# ---- 2. perf stat (optional) ----------------------------------------
if command -v perf >/dev/null 2>&1 && perf stat -o /dev/null true 2>/dev/null; then
    note "==> perf stat"
    perf stat -d -o "$OUT_DIR/perf-stat.txt" -- "${PROFILE_CMD[@]}" >/dev/null
    note "    wrote $OUT_DIR/perf-stat.txt"
else
    note "skip: perf stat (no usable \`perf\` on this host)"
fi

# ---- 3. flamegraph (optional) ---------------------------------------
flamegraph_from_perf() {
    # inferno (cargo install inferno) or the classic FlameGraph perl
    # scripts; whichever is on PATH.
    if command -v inferno-collapse-perf >/dev/null 2>&1; then
        perf script -i "$OUT_DIR/perf.data" | inferno-collapse-perf | inferno-flamegraph
    elif command -v stackcollapse-perf.pl >/dev/null 2>&1; then
        perf script -i "$OUT_DIR/perf.data" | stackcollapse-perf.pl | flamegraph.pl
    else
        return 1
    fi
}

if command -v perf >/dev/null 2>&1 && perf record -o /dev/null -- true 2>/dev/null; then
    note "==> perf record + flamegraph"
    perf record -F 997 -g --call-graph dwarf -o "$OUT_DIR/perf.data" \
        -- "${PROFILE_CMD[@]}" >/dev/null
    if flamegraph_from_perf > "$OUT_DIR/flamegraph.svg" 2>/dev/null; then
        note "    wrote $OUT_DIR/flamegraph.svg"
    else
        note "skip: flamegraph rendering (install \`inferno\` or the FlameGraph scripts);"
        note "      raw samples kept at $OUT_DIR/perf.data"
    fi
else
    note "skip: flamegraph (no usable \`perf record\` on this host)"
fi

# ---- 4. PGO build (optional, --pgo) ---------------------------------
if [ "$PGO" = 1 ]; then
    PROFDATA=""
    if command -v llvm-profdata >/dev/null 2>&1; then
        PROFDATA=llvm-profdata
    else
        # rustup's llvm-tools component ships it under the sysroot.
        SYSROOT=$(rustc --print sysroot 2>/dev/null || true)
        CAND=$(find "$SYSROOT" -name llvm-profdata -type f 2>/dev/null | head -1 || true)
        [ -n "$CAND" ] && PROFDATA="$CAND"
    fi
    if [ -z "$PROFDATA" ]; then
        note "skip: PGO (no llvm-profdata; rustup component add llvm-tools)"
    else
        PGO_DIR=$(mktemp -d)
        note "==> PGO: instrumented build + training run"
        RUSTFLAGS="-Cprofile-generate=$PGO_DIR" \
            cargo build --release -p refsim-bench --bin simwall --target-dir target/pgo
        ./target/pgo/release/simwall --quick --out "$OUT_DIR/BENCH_pgo_train.json" >/dev/null
        "$PROFDATA" merge -o "$PGO_DIR/merged.profdata" "$PGO_DIR"
        note "==> PGO: optimized rebuild + re-measure"
        RUSTFLAGS="-Cprofile-use=$PGO_DIR/merged.profdata" \
            cargo build --release -p refsim-bench --bin simwall --target-dir target/pgo
        ./target/pgo/release/simwall $QUICK --out "$OUT_DIR/BENCH_simwall_pgo.json"
        note "    compare $OUT_DIR/BENCH_simwall.json vs $OUT_DIR/BENCH_simwall_pgo.json"
        rm -rf "$PGO_DIR"
    fi
fi

note "done: artifacts in $OUT_DIR/"

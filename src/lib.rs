//! # refsim
//!
//! A cycle-level DRAM-refresh / operating-system co-simulation in Rust,
//! reproducing **"Hardware-Software Co-design to Mitigate DRAM Refresh
//! Overheads: A Case for Refresh-Aware Process Scheduling"**
//! (ASPLOS 2017).
//!
//! The facade re-exports the five sub-crates:
//!
//! * [`dram`] — DDR3/DDR4 bank/rank timing, FR-FCFS memory controller,
//!   and all refresh policies, including the paper's sequential
//!   per-bank schedule (Algorithm 1).
//! * [`cpu`] — out-of-order core timing model and L1/L2 caches.
//! * [`os`] — buddy allocator with bank-aware partitioning (Algorithm
//!   2), virtual memory, and CFS with refresh-aware scheduling
//!   (Algorithm 3).
//! * [`workloads`] — synthetic SPEC CPU2006 / STREAM / NAS models and
//!   Table 2's multi-programmed mixes.
//! * [`core`] — the composed system, configuration presets, metrics and
//!   the experiment harness for every figure in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use refsim::core::config::SystemConfig;
//! use refsim::core::system::System;
//! use refsim::workloads::mix::by_name;
//!
//! // Compare all-bank refresh against the full co-design on WL-5,
//! // shrunk to a very small time scale so this doctest stays fast.
//! let mut base = SystemConfig::table1().with_time_scale(1024);
//! base.warmup = base.trefw() / 4;
//! base.measure = base.trefw() / 2;
//! let mix = by_name("WL-5").unwrap();
//!
//! let baseline = System::new(base.clone(), &mix).run();
//! let codesign = System::new(base.co_design(), &mix).run();
//! assert!(codesign.speedup_over(&baseline) > 1.0);
//! ```

#![warn(missing_docs)]

pub use refsim_core as core;
pub use refsim_cpu as cpu;
pub use refsim_dram as dram;
pub use refsim_os as os;
pub use refsim_workloads as workloads;

/// Everything most users need.
pub mod prelude {
    pub use refsim_core::prelude::*;
    pub use refsim_cpu::prelude::*;
    pub use refsim_dram::prelude::*;
    pub use refsim_os::prelude::*;
    pub use refsim_workloads::prelude::*;
}
